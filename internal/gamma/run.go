package gamma

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/rt"
	"repro/internal/symtab"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// ErrMaxSteps is returned when execution exceeds Options.MaxSteps reaction
// firings. Gamma programs need not terminate; the limit turns a diverging
// program into a reported error instead of a hang. It wraps rt.ErrMaxSteps,
// the cross-runtime budget class; errors from RunContext additionally satisfy
// errors.Is against rt.ErrCanceled / rt.ErrDeadline (and thus against
// context.Canceled / context.DeadlineExceeded) when the context stopped the
// run. See package rt for the full taxonomy.
var ErrMaxSteps = rt.Wrap("gamma: maximum step count exceeded", rt.ErrMaxSteps)

// Memo caches reaction applications: the products (and branch) computed for
// a given combination of consumed elements. It mirrors the dataflow side's
// instruction reuse (DF-DTM [3]) at reaction granularity — one of the
// cross-model benefits the paper's introduction motivates. Implementations
// must be safe for concurrent use when Workers > 1.
type Memo interface {
	LookupReaction(key string) ([]multiset.Tuple, bool)
	StoreReaction(key string, products []multiset.Tuple)
}

// Tracer observes the dependency structure of an execution: one call per
// reaction firing, with the keys of the elements it consumed and produced (a
// consumed key equals some earlier firing's produced key, or names an
// initial element). Package profile implements this to compute work, span
// and average parallelism. Implementations must be safe for concurrent use
// when Workers > 1.
type Tracer interface {
	RecordFiring(name string, consumed, produced []string)
}

// Options configures an execution.
type Options struct {
	// Workers is the number of concurrent reaction executors. 0 or 1 selects
	// the deterministic sequential interpreter; larger values select the
	// nondeterministic parallel runtime.
	Workers int
	// Seed seeds the nondeterministic candidate selection. Sequential runs
	// with Seed 0 are fully deterministic; parallel runs use Seed to derive
	// per-worker streams.
	Seed int64
	// MaxSteps bounds the total number of reaction firings; 0 means no bound.
	MaxSteps int64
	// Memo, when set, caches reaction products by reaction and consumed
	// elements; a hit skips the action evaluation and its WorkFactor.
	Memo Memo
	// WorkFactor emulates expensive reaction actions: each application spins
	// this many iterations before evaluating products. See the dataflow
	// counterpart for rationale.
	WorkFactor int
	// Tracer, when set, receives every reaction firing with its consumed and
	// produced element keys for dependency analysis.
	Tracer Tracer
	// FullScan disables the delta-driven incremental scheduler and restores
	// the seed engine's behavior: the sequential interpreter probes every
	// reaction round-robin after every firing, and parallel workers rescan
	// all reactions after every commit. The stable state reached is identical
	// either way; the flag exists as the measurement baseline for the
	// incremental engine (cmd/gfbench -exp e16) and as an oracle in tests.
	FullScan bool
	// FaultInjector, when set, runs before every reaction application with
	// the reaction name and worker index; a non-nil return aborts the run
	// with that error, and a panic inside it exercises the worker pool's
	// panic recovery. For stress tests; leave nil in production runs.
	FaultInjector rt.FaultInjector
	// Recorder, when set, receives the execution's telemetry: per-worker
	// event tracks (firing spans with latency, commit conflicts, retries)
	// and registry counters/gauges/histograms mirroring Stats increment for
	// increment. Nil costs one branch per record site on the hot paths.
	Recorder *telemetry.Recorder
	// TrackLabel prefixes this run's telemetry track names (default
	// "gamma"); dist sets it per node so a cluster trace shows one track
	// group per node.
	TrackLabel string
}

// traceFiring reports one committed reaction application to the tracer.
func traceFiring(opt Options, name string, consumed, produced []multiset.Tuple) {
	if opt.Tracer == nil {
		return
	}
	ck := make([]string, len(consumed))
	for i, t := range consumed {
		ck[i] = t.Key()
	}
	pk := make([]string, len(produced))
	for i, t := range produced {
		pk[i] = t.Key()
	}
	opt.Tracer.RecordFiring(name, ck, pk)
}

// Stats reports what an execution did.
type Stats struct {
	// Steps is the total number of reaction firings.
	Steps int64
	// Fired counts firings per reaction name.
	Fired map[string]int64
	// Probes counts reaction match searches (FindMatch attempts) — the
	// matching engine's work metric. The incremental scheduler's win shows
	// up as fewer probes for the same Steps, because provably disabled
	// reactions are never re-probed.
	Probes int64
	// Conflicts counts failed optimistic commits (parallel runtime only):
	// a worker matched a set of molecules that a concurrent worker consumed
	// before the commit.
	Conflicts int64
	// Retries counts conflict rematches: failed commits that were retried in
	// place (with capped exponential backoff) rather than abandoned to the
	// scheduler. Conflicts - Retries is therefore the number of give-ups.
	Retries int64
	// MemoHits counts reaction applications answered from Options.Memo.
	MemoHits int64
	// Workers echoes the worker count used.
	Workers int
}

func newStats(workers int) *Stats {
	return &Stats{Fired: make(map[string]int64), Workers: workers}
}

func (s *Stats) merge(o *Stats) {
	s.Steps += o.Steps
	s.Probes += o.Probes
	s.Conflicts += o.Conflicts
	s.Retries += o.Retries
	s.MemoHits += o.MemoHits
	for k, v := range o.Fired {
		s.Fired[k] += v
	}
}

// workSink defeats any optimization of the WorkFactor spin loop.
var workSink atomic.Uint64

func spin(n int) {
	if n <= 0 {
		return
	}
	acc := workSink.Load()
	for i := 0; i < n; i++ {
		acc = acc*1664525 + 1013904223
	}
	workSink.Store(acc)
}

// memoPlan is the per-reaction analysis backing tag-insensitive reuse. Two
// matches that differ only in the iteration tag perform the same expensive
// computation (the value fields of the products); only product fields whose
// expressions mention the tag variable differ, affinely. The plan records
// which chosen-tuple fields to mask out of the memo key and which product
// fields to re-evaluate on a hit. Masking applies only when every pattern
// binds the same tag variable in its third field and no branch condition
// reads it — the shape Algorithm 1 emits; otherwise keys stay exact, which
// is always sound.
type memoPlan struct {
	tagVar string
	mask   [][]bool   // per pattern, per field: part of the tag, exclude from key
	reeval [][][]bool // per branch, per product, per field: mentions the tag
}

func (r *Reaction) memoPlan() *memoPlan {
	r.planOnce.Do(func() {
		plan := &memoPlan{}
		tagVar := ""
		for _, p := range r.Patterns {
			if len(p) < 3 || p[2].Var == "" {
				r.plan = plan
				return
			}
			if tagVar == "" {
				tagVar = p[2].Var
			} else if p[2].Var != tagVar {
				r.plan = plan
				return
			}
		}
		for _, b := range r.Branches {
			if b.Cond != nil {
				for _, v := range expr.FreeVars(b.Cond) {
					if v == tagVar {
						r.plan = plan
						return
					}
				}
			}
		}
		plan.tagVar = tagVar
		plan.mask = make([][]bool, len(r.Patterns))
		for i, p := range r.Patterns {
			plan.mask[i] = make([]bool, len(p))
			for j, f := range p {
				plan.mask[i][j] = f.Var == tagVar
			}
		}
		plan.reeval = make([][][]bool, len(r.Branches))
		for bi, b := range r.Branches {
			plan.reeval[bi] = make([][]bool, len(b.Products))
			for pi, tpl := range b.Products {
				plan.reeval[bi][pi] = make([]bool, len(tpl))
				for fi, e := range tpl {
					for _, v := range expr.FreeVars(e) {
						if v == tagVar {
							plan.reeval[bi][pi][fi] = true
						}
					}
				}
			}
		}
		r.plan = plan
	})
	return r.plan
}

// memoEntry is what the table stores: the branch that fired and its products
// (with possibly stale tag fields, refreshed per application).
type memoEntry struct {
	branch   int
	products []multiset.Tuple
}

// applyAction evaluates the enabled branch's products over the firing's slot
// environment (compiled kernel path), honoring the memo table and work
// factor.
func applyAction(r *Reaction, k *kernel, s *searcher, opt Options, stats *Stats, ts *telSink) ([]multiset.Tuple, error) {
	if opt.Memo == nil {
		spin(opt.WorkFactor)
		return k.produce(r.Name, s.branch, s.env)
	}
	plan := r.memoPlan()
	key := r.Name
	for i, t := range s.chosen {
		for j, v := range t {
			if plan.tagVar != "" && plan.mask[i][j] {
				continue
			}
			key += "|" + v.String()
		}
		key += "||"
	}
	if cached, ok := opt.Memo.LookupReaction(key); ok {
		stats.MemoHits++
		ts.memoHit()
		return refreshProducts(r, k, plan, cached, s.env)
	}
	spin(opt.WorkFactor)
	products, err := k.produce(r.Name, s.branch, s.env)
	if err != nil {
		return nil, err
	}
	stored := append([]multiset.Tuple{multisetBranchMarker(s.branch)}, products...)
	opt.Memo.StoreReaction(key, stored)
	return products, nil
}

// multisetBranchMarker encodes the branch index as a leading 1-tuple in the
// stored product list, so the Memo interface stays a plain tuple store.
func multisetBranchMarker(branch int) multiset.Tuple {
	return multiset.Tuple{value.Int(int64(branch))}
}

// refreshProducts rebuilds cached products for the current match: fields
// whose expressions mention the tag variable are re-evaluated (cheap), the
// rest — the expensive value computation — are reused.
func refreshProducts(r *Reaction, k *kernel, plan *memoPlan, cached []multiset.Tuple, env []value.Value) ([]multiset.Tuple, error) {
	branch := int(cached[0].Value().AsInt())
	stored := cached[1:]
	if plan.tagVar == "" {
		return stored, nil
	}
	out := make([]multiset.Tuple, len(stored))
	for pi, t := range stored {
		flags := plan.reeval[branch][pi]
		fresh := t.Clone()
		for fi := range fresh {
			if flags[fi] {
				v, err := k.branches[branch].prods[pi][fi](env)
				if err != nil {
					return nil, fmt.Errorf("gamma: reaction %s memo refresh: %w", r.Name, err)
				}
				fresh[fi] = v
			}
		}
		out[pi] = fresh
	}
	return out, nil
}

// Run executes p on m until the stable state of Eq. 1 is reached: no reaction
// condition holds for any combination of multiset elements. The multiset is
// modified in place and holds the result on return. Execution follows
// Options: sequential deterministic or parallel nondeterministic.
//
// Run is RunContext with context.Background(): no deadline, no cancellation.
func Run(p *Program, m *multiset.Multiset, opt Options) (*Stats, error) {
	return RunContext(context.Background(), p, m, opt)
}

// RunContext is Run under a context: the deadline and cancellation of ctx
// propagate to every worker, which observe ctx between reaction firings and
// stop at the next commit boundary. The multiset is always left in a
// consistent intermediate state (a prefix of some valid firing sequence).
//
// Early exits of every kind — cancellation, deadline, step budget, a failing
// action, a recovered panic — return non-nil partial Stats describing the
// work done up to the stop, alongside the classifying error: rt.ErrCanceled
// or rt.ErrDeadline (which also satisfy errors.Is against context.Canceled /
// context.DeadlineExceeded), ErrMaxSteps, or *rt.PanicError.
func RunContext(ctx context.Context, p *Program, m *multiset.Multiset, opt Options) (*Stats, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	for _, r := range p.Reactions {
		if err := r.Validate(); err != nil {
			return newStats(workers), rt.Mark(rt.ErrInvalid, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return newStats(workers), rt.FromContext(err)
	}
	if workers == 1 {
		return runSequential(ctx, p, m, opt)
	}
	return runParallel(ctx, p, m, opt)
}

// runSequential is the direct implementation of the Γ recursion (Eq. 1):
// while some (Ri, Ai) is enabled, replace the matched elements with the
// action's products; otherwise the multiset is the result. With Seed 0
// matching is deterministic.
//
// Scheduling is a dirty worklist drained round-robin: a reaction that fails
// to match is marked clean and skipped until a commit adds an element with a
// label it subscribes to (see schedule.go) — skipping is sound because a
// clean reaction is provably disabled (matching is monotone; removals never
// enable). The stable state of Eq. 1 is exactly "no dirty reaction": an
// empty worklist. Because a skipped probe would have failed anyway, the
// sequence of firings — and thus the deterministic result — is identical to
// the seed engine's full round-robin; only the wasted probes disappear.
//
// The context is observed once per probe; a panic out of a reaction's
// condition or action (or the fault injector) is recovered into *rt.PanicError
// with the partial stats preserved.
func runSequential(ctx context.Context, p *Program, m *multiset.Multiset, opt Options) (stats *Stats, err error) {
	stats = newStats(1)
	site := ""
	defer func() {
		if rec := recover(); rec != nil {
			err = rt.NewPanicError("gamma", site, 0, rec)
		}
	}()
	var rng *rand.Rand
	if opt.Seed != 0 {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	n := len(p.Reactions)
	if n == 0 {
		return stats, nil
	}
	ts := newTelSink(opt, p, 0)
	subs := p.subs()
	dirty := make([]bool, n)
	for i := range dirty {
		dirty[i] = true
	}
	remaining := n
	markDirty := func(j int) {
		if !dirty[j] {
			dirty[j] = true
			remaining++
		}
	}
	var symsBuf []symtab.Sym // reused produce-delta scratch, incremental mode
	for i := 0; remaining > 0; i = (i + 1) % n {
		if !dirty[i] {
			continue
		}
		r := p.Reactions[i]
		site = r.Name
		if cerr := ctx.Err(); cerr != nil {
			return stats, rt.FromContext(cerr)
		}
		stats.Probes++
		t0 := ts.begin()
		ts.probe(r.Name)
		k := r.kernel()
		s, err := findFiring(r, m, rng)
		if err != nil {
			return stats, err
		}
		if s == nil {
			dirty[i] = false
			remaining--
			continue
		}
		if opt.MaxSteps > 0 && stats.Steps >= opt.MaxSteps {
			// The match just found proves the program is still enabled past
			// the step budget — no full Enabled rescan needed.
			k.putSearcher(s)
			return stats, ErrMaxSteps
		}
		if opt.FaultInjector != nil {
			if ferr := opt.FaultInjector(r.Name, 0); ferr != nil {
				k.putSearcher(s)
				return stats, ferr
			}
		}
		products, err := applyAction(r, k, s, opt, stats, ts)
		if err != nil {
			k.putSearcher(s)
			return stats, err
		}
		if opt.FullScan {
			// Seed-engine commit: separate claim and insert phases.
			if !m.TryRemoveAll(s.chosen) {
				// Unreachable single-threaded; defensive.
				k.putSearcher(s)
				return stats, fmt.Errorf("gamma: matched elements vanished in sequential run of %s", r.Name)
			}
			m.AddAll(products)
			traceFiring(opt, r.Name, s.chosen, products)
			k.putSearcher(s)
			stats.Steps++
			stats.Fired[r.Name]++
			// The fired reaction stays dirty: consuming elements may leave it
			// enabled on what remains.
			woken := n - remaining
			for j := 0; j < n; j++ {
				markDirty(j)
			}
			ts.firing(i, r.Name, t0, m, woken, remaining)
			continue
		}
		// Incremental commit: the firing's consume+produce lands as one
		// batched delta under a single lock acquisition per shard, and the
		// returned label symbols drive the subscription wakeups directly.
		ok, syms := m.ApplyDelta(s.chosen, s.keys, products, symsBuf[:0])
		symsBuf = syms
		if !ok {
			// Unreachable single-threaded; defensive.
			k.putSearcher(s)
			return stats, fmt.Errorf("gamma: matched elements vanished in sequential run of %s", r.Name)
		}
		traceFiring(opt, r.Name, s.chosen, products)
		k.putSearcher(s)
		stats.Steps++
		stats.Fired[r.Name]++
		if ts == nil {
			subs.forEachSym(syms, markDirty)
		} else {
			before := remaining
			subs.forEachSym(syms, markDirty)
			ts.firing(i, r.Name, t0, m, remaining-before, remaining)
		}
	}
	return stats, nil
}

// parShared is the coordination state of the parallel runtime.
type parShared struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers int
	version uint64 // bumped on every successful commit
	idle    int
	done    bool
	err     error
	steps   int64
	// queue is the shared worklist of reaction indexes worth probing, FIFO;
	// queued dedupes membership. Both are guarded by mu and unused (empty)
	// in FullScan mode.
	queue  []int
	queued []bool
}

// enqueueLocked appends reaction idx to the worklist unless already present.
// Callers hold sh.mu.
func (sh *parShared) enqueueLocked(idx int) {
	if !sh.queued[idx] {
		sh.queued[idx] = true
		sh.queue = append(sh.queue, idx)
	}
}

// runParallel executes reactions with a pool of workers performing
// optimistic grab–compute–commit cycles:
//
//  1. match: find an enabled combination of molecules (randomized order, the
//     model's nondeterminism);
//  2. compute: instantiate the enabled branch's products;
//  3. commit: atomically claim the matched molecules (TryRemoveAll); on
//     conflict with a concurrent worker, drop the products and rematch;
//  4. on success, insert the products and bump the multiset version.
//
// Scheduling is delta-driven: workers drain a shared worklist of reaction
// indexes, seeded with every reaction and refilled on each commit with the
// reactions subscribed to the labels the commit added (schedule.go). The
// worklist is a best-effort accelerator — a probe may be wasted, never the
// other way around, because every commit re-enqueues its subscribers.
//
// Global termination reproduces Eq. 1's stability test exactly and does not
// rely on the worklist: a worker that finds the worklist empty falls back to
// a full scan of every reaction; if the scan fires nothing it goes idle *at
// a version*, and if the version is still current and all workers are idle at
// it, no molecule has changed since a full unsuccessful scan, so no reaction
// is enabled and the stable state is reached.
// Cancellation propagates two ways: workers poll ctx once per probe, and a
// watcher goroutine turns ctx.Done() into sh.fail + cond broadcast so workers
// parked in the idle wait wake immediately — a canceled run returns in probe
// time, not in wait time.
func runParallel(ctx context.Context, p *Program, m *multiset.Multiset, opt Options) (*Stats, error) {
	workers := opt.Workers
	sh := &parShared{workers: workers, queued: make([]bool, len(p.Reactions))}
	sh.cond = sync.NewCond(&sh.mu)
	if !opt.FullScan {
		for i := range p.Reactions {
			sh.enqueueLocked(i)
		}
	}
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			sh.fail(rt.FromContext(ctx.Err()))
		case <-watchDone:
		}
	}()
	perWorker := make([]*Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		perWorker[w] = newStats(workers)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerLoop(ctx, p, m, opt, sh, perWorker[w], w)
		}(w)
	}
	wg.Wait()
	close(watchDone)
	total := newStats(workers)
	for _, ps := range perWorker {
		total.merge(ps)
	}
	sh.mu.Lock()
	err := sh.err
	sh.mu.Unlock()
	return total, err
}

// maxConflictRetries bounds how often a worker rematches the same reaction
// after a failed optimistic commit before yielding and moving on. Unbounded
// retries let one contended reaction starve the scan of every other reaction;
// bounded retries cannot lose work — in worklist mode the reaction is
// re-enqueued, and in scan mode the conflicting commit bumped the version, so
// the scan repeats anyway.
const maxConflictRetries = 8

// conflictBackoff spaces out rematches of a contended reaction. The first
// retries stay hot (the conflicting commit usually finished already); after
// that the worker backs off exponentially, capped at 64µs, instead of
// spinning the match engine against the same hot molecules — under heavy
// contention a spinning loser just burns probes and memory bandwidth that the
// commit winner needs to make progress.
func conflictBackoff(retries int) {
	if retries < 2 {
		runtime.Gosched()
		return
	}
	shift := retries - 2
	if shift > 6 {
		shift = 6
	}
	time.Sleep(time.Duration(1<<uint(shift)) * time.Microsecond)
}

// safeTryFire is tryFire behind the worker pool's panic barrier: a panic in a
// reaction's condition, action or the fault injector is recovered into a
// *rt.PanicError carrying the reaction and worker identity, the pool is told
// to stop, and the worker exits cleanly instead of taking the process down or
// leaving its peers waiting on an idle count that can never complete.
func safeTryFire(ctx context.Context, p *Program, m *multiset.Multiset, opt Options, sh *parShared, stats *Stats, rng *rand.Rand, ts *telSink, idx, worker int, requeue bool) (fired, stop bool) {
	defer func() {
		if rec := recover(); rec != nil {
			sh.fail(rt.NewPanicError("gamma", p.Reactions[idx].Name, worker, rec))
			fired, stop = false, true
		}
	}()
	return tryFire(ctx, p, m, opt, sh, stats, rng, ts, idx, worker, requeue)
}

// tryFire probes reaction idx once and fires it if enabled, with the bounded
// optimistic-commit retry loop. requeue re-enqueues the reaction after giving
// up on a contended commit (worklist mode). Returns whether a firing
// committed and whether the worker must stop (error, cancellation or
// MaxSteps).
func tryFire(ctx context.Context, p *Program, m *multiset.Multiset, opt Options, sh *parShared, stats *Stats, rng *rand.Rand, ts *telSink, idx, worker int, requeue bool) (fired, stop bool) {
	r := p.Reactions[idx]
	subs := p.subs()
	k := r.kernel()
	var symsArr [8]symtab.Sym
	for retries := 0; ; retries++ {
		if cerr := ctx.Err(); cerr != nil {
			sh.fail(rt.FromContext(cerr))
			return false, true
		}
		stats.Probes++
		t0 := ts.begin()
		ts.probe(r.Name)
		s, err := findFiring(r, m, rng)
		if err != nil {
			sh.fail(err)
			return false, true
		}
		if s == nil {
			return false, false
		}
		if opt.FaultInjector != nil {
			if ferr := opt.FaultInjector(r.Name, worker); ferr != nil {
				k.putSearcher(s)
				sh.fail(ferr)
				return false, true
			}
		}
		products, err := applyAction(r, k, s, opt, stats, ts)
		if err != nil {
			k.putSearcher(s)
			sh.fail(err)
			return false, true
		}
		// Commit. Incremental mode batches the claim and insert into one
		// ApplyDelta (single lock acquisition per shard; the returned label
		// symbols feed the worklist); FullScan keeps the seed engine's
		// two-phase TryRemoveAll + AddAll. A failed claim either way means a
		// concurrent worker consumed a matched molecule first.
		var syms []symtab.Sym
		committed := false
		if opt.FullScan {
			if committed = m.TryRemoveAll(s.chosen); committed {
				m.AddAll(products)
			}
		} else {
			committed, syms = m.ApplyDelta(s.chosen, s.keys, products, symsArr[:0])
		}
		if !committed {
			k.putSearcher(s)
			stats.Conflicts++
			ts.conflict(r.Name)
			if retries < maxConflictRetries {
				stats.Retries++
				ts.retry(r.Name)
				conflictBackoff(retries)
				continue // rematch: its molecules changed under us
			}
			// Heavily contended: yield so the other reactions and workers
			// make progress. The commit that beat us bumped the version, so
			// the stability test cannot conclude while this reaction is
			// still enabled.
			if requeue {
				sh.mu.Lock()
				sh.enqueueLocked(idx)
				sh.mu.Unlock()
			}
			runtime.Gosched()
			return false, false
		}
		traceFiring(opt, r.Name, s.chosen, products)
		k.putSearcher(s)
		stats.Steps++
		stats.Fired[r.Name]++

		woken, depth := 0, 0
		sh.mu.Lock()
		sh.version++
		sh.steps++
		over := opt.MaxSteps > 0 && sh.steps >= opt.MaxSteps
		if !opt.FullScan {
			before := len(sh.queue)
			subs.forEachSym(syms, sh.enqueueLocked)
			sh.enqueueLocked(idx) // may still be enabled on what remains
			woken, depth = len(sh.queue)-before, len(sh.queue)
		}
		sh.cond.Broadcast()
		sh.mu.Unlock()
		ts.firing(idx, r.Name, t0, m, woken, depth)
		if over {
			sh.fail(ErrMaxSteps)
			return true, true
		}
		return true, false
	}
}

func workerLoop(ctx context.Context, p *Program, m *multiset.Multiset, opt Options, sh *parShared, stats *Stats, id int) {
	rng := rand.New(rand.NewSource(opt.Seed + int64(id)*0x9e3779b9 + 1))
	ts := newTelSink(opt, p, id)
	n := len(p.Reactions)
	for {
		sh.mu.Lock()
		if sh.done || sh.err != nil {
			sh.mu.Unlock()
			return
		}
		idx := -1
		if len(sh.queue) > 0 {
			idx = sh.queue[0]
			sh.queue = sh.queue[1:]
			sh.queued[idx] = false
		}
		scanVersion := sh.version
		sh.mu.Unlock()

		if idx >= 0 {
			// Worklist mode: probe just the delta-scheduled reaction.
			if _, stop := safeTryFire(ctx, p, m, opt, sh, stats, rng, ts, idx, id, true); stop {
				return
			}
			continue
		}

		// Empty worklist: full scan, the exact Eq. 1 stability test. The
		// worklist is best-effort under concurrency; this backstop keeps
		// termination exact regardless of scheduling races.
		fired := false
		start := rng.Intn(n)
		for k := 0; k < n; k++ {
			firedHere, stop := safeTryFire(ctx, p, m, opt, sh, stats, rng, ts, (start+k)%n, id, false)
			if stop {
				return
			}
			if firedHere {
				fired = true
				break
			}
		}
		if fired {
			continue
		}
		// Full scan with no enabled reaction. Go idle at scanVersion; if all
		// workers are idle at an unchanged version, the multiset is stable.
		sh.mu.Lock()
		if sh.version != scanVersion {
			sh.mu.Unlock() // something committed mid-scan; rescan
			continue
		}
		sh.idle++
		if sh.idle == sh.workers { // all idle: stable state
			sh.done = true
			sh.cond.Broadcast()
			sh.mu.Unlock()
			return
		}
		for sh.version == scanVersion && !sh.done && sh.err == nil {
			sh.cond.Wait()
		}
		sh.idle--
		done := sh.done || sh.err != nil
		sh.mu.Unlock()
		if done {
			return
		}
	}
}

func (sh *parShared) fail(err error) {
	sh.mu.Lock()
	// A failure after the stable state was already reached (e.g. the context
	// watcher losing the race with completion) must not turn success into an
	// error.
	if sh.err == nil && !sh.done {
		sh.err = err
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// Plan is a sequential composition of parallel reaction groups: the paper's
// ';' operator over '|' groups (P1 ; P2 ; ...). Each program runs to its
// stable state before the next starts.
type Plan struct {
	Stages []*Program
}

// Sequence builds a Plan from programs run one after another.
func Sequence(stages ...*Program) *Plan { return &Plan{Stages: stages} }

// Run executes every stage in order on the same multiset, merging stats.
func (pl *Plan) Run(m *multiset.Multiset, opt Options) (*Stats, error) {
	return pl.RunContext(context.Background(), m, opt)
}

// RunContext is Run under a context; a cancellation or deadline stops the
// current stage at its next commit boundary and returns the stats merged
// across the stages run so far.
func (pl *Plan) RunContext(ctx context.Context, m *multiset.Multiset, opt Options) (*Stats, error) {
	total := newStats(opt.Workers)
	for _, stage := range pl.Stages {
		st, err := RunContext(ctx, stage, m, opt)
		if st != nil {
			total.merge(st)
		}
		if err != nil {
			return total, fmt.Errorf("gamma: stage %s: %w", stage.Name, err)
		}
	}
	return total, nil
}
