package gamma

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

// ErrMaxSteps is returned when execution exceeds Options.MaxSteps reaction
// firings. Gamma programs need not terminate; the limit turns a diverging
// program into a reported error instead of a hang.
var ErrMaxSteps = errors.New("gamma: maximum step count exceeded")

// Memo caches reaction applications: the products (and branch) computed for
// a given combination of consumed elements. It mirrors the dataflow side's
// instruction reuse (DF-DTM [3]) at reaction granularity — one of the
// cross-model benefits the paper's introduction motivates. Implementations
// must be safe for concurrent use when Workers > 1.
type Memo interface {
	LookupReaction(key string) ([]multiset.Tuple, bool)
	StoreReaction(key string, products []multiset.Tuple)
}

// Tracer observes the dependency structure of an execution: one call per
// reaction firing, with the keys of the elements it consumed and produced (a
// consumed key equals some earlier firing's produced key, or names an
// initial element). Package profile implements this to compute work, span
// and average parallelism. Implementations must be safe for concurrent use
// when Workers > 1.
type Tracer interface {
	RecordFiring(name string, consumed, produced []string)
}

// Options configures an execution.
type Options struct {
	// Workers is the number of concurrent reaction executors. 0 or 1 selects
	// the deterministic sequential interpreter; larger values select the
	// nondeterministic parallel runtime.
	Workers int
	// Seed seeds the nondeterministic candidate selection. Sequential runs
	// with Seed 0 are fully deterministic; parallel runs use Seed to derive
	// per-worker streams.
	Seed int64
	// MaxSteps bounds the total number of reaction firings; 0 means no bound.
	MaxSteps int64
	// Memo, when set, caches reaction products by reaction and consumed
	// elements; a hit skips the action evaluation and its WorkFactor.
	Memo Memo
	// WorkFactor emulates expensive reaction actions: each application spins
	// this many iterations before evaluating products. See the dataflow
	// counterpart for rationale.
	WorkFactor int
	// Tracer, when set, receives every reaction firing with its consumed and
	// produced element keys for dependency analysis.
	Tracer Tracer
}

// traceFiring reports one committed reaction application to the tracer.
func traceFiring(opt Options, name string, consumed, produced []multiset.Tuple) {
	if opt.Tracer == nil {
		return
	}
	ck := make([]string, len(consumed))
	for i, t := range consumed {
		ck[i] = t.Key()
	}
	pk := make([]string, len(produced))
	for i, t := range produced {
		pk[i] = t.Key()
	}
	opt.Tracer.RecordFiring(name, ck, pk)
}

// Stats reports what an execution did.
type Stats struct {
	// Steps is the total number of reaction firings.
	Steps int64
	// Fired counts firings per reaction name.
	Fired map[string]int64
	// Conflicts counts failed optimistic commits (parallel runtime only):
	// a worker matched a set of molecules that a concurrent worker consumed
	// before the commit.
	Conflicts int64
	// MemoHits counts reaction applications answered from Options.Memo.
	MemoHits int64
	// Workers echoes the worker count used.
	Workers int
}

func newStats(workers int) *Stats {
	return &Stats{Fired: make(map[string]int64), Workers: workers}
}

func (s *Stats) merge(o *Stats) {
	s.Steps += o.Steps
	s.Conflicts += o.Conflicts
	s.MemoHits += o.MemoHits
	for k, v := range o.Fired {
		s.Fired[k] += v
	}
}

// workSink defeats any optimization of the WorkFactor spin loop.
var workSink atomic.Uint64

func spin(n int) {
	if n <= 0 {
		return
	}
	acc := workSink.Load()
	for i := 0; i < n; i++ {
		acc = acc*1664525 + 1013904223
	}
	workSink.Store(acc)
}

// memoPlan is the per-reaction analysis backing tag-insensitive reuse. Two
// matches that differ only in the iteration tag perform the same expensive
// computation (the value fields of the products); only product fields whose
// expressions mention the tag variable differ, affinely. The plan records
// which chosen-tuple fields to mask out of the memo key and which product
// fields to re-evaluate on a hit. Masking applies only when every pattern
// binds the same tag variable in its third field and no branch condition
// reads it — the shape Algorithm 1 emits; otherwise keys stay exact, which
// is always sound.
type memoPlan struct {
	tagVar string
	mask   [][]bool   // per pattern, per field: part of the tag, exclude from key
	reeval [][][]bool // per branch, per product, per field: mentions the tag
}

func (r *Reaction) memoPlan() *memoPlan {
	r.planOnce.Do(func() {
		plan := &memoPlan{}
		tagVar := ""
		for _, p := range r.Patterns {
			if len(p) < 3 || p[2].Var == "" {
				r.plan = plan
				return
			}
			if tagVar == "" {
				tagVar = p[2].Var
			} else if p[2].Var != tagVar {
				r.plan = plan
				return
			}
		}
		for _, b := range r.Branches {
			if b.Cond != nil {
				for _, v := range expr.FreeVars(b.Cond) {
					if v == tagVar {
						r.plan = plan
						return
					}
				}
			}
		}
		plan.tagVar = tagVar
		plan.mask = make([][]bool, len(r.Patterns))
		for i, p := range r.Patterns {
			plan.mask[i] = make([]bool, len(p))
			for j, f := range p {
				plan.mask[i][j] = f.Var == tagVar
			}
		}
		plan.reeval = make([][][]bool, len(r.Branches))
		for bi, b := range r.Branches {
			plan.reeval[bi] = make([][]bool, len(b.Products))
			for pi, tpl := range b.Products {
				plan.reeval[bi][pi] = make([]bool, len(tpl))
				for fi, e := range tpl {
					for _, v := range expr.FreeVars(e) {
						if v == tagVar {
							plan.reeval[bi][pi][fi] = true
						}
					}
				}
			}
		}
		r.plan = plan
	})
	return r.plan
}

// memoEntry is what the table stores: the branch that fired and its products
// (with possibly stale tag fields, refreshed per application).
type memoEntry struct {
	branch   int
	products []multiset.Tuple
}

// applyAction evaluates the enabled branch's products, honoring the memo
// table and work factor.
func applyAction(r *Reaction, match *Match, opt Options, stats *Stats) ([]multiset.Tuple, error) {
	if opt.Memo == nil {
		spin(opt.WorkFactor)
		return r.produce(match.Branch, match.Env)
	}
	plan := r.memoPlan()
	key := r.Name
	for i, t := range match.Chosen {
		for j, v := range t {
			if plan.tagVar != "" && plan.mask[i][j] {
				continue
			}
			key += "|" + v.String()
		}
		key += "||"
	}
	if cached, ok := opt.Memo.LookupReaction(key); ok {
		stats.MemoHits++
		return refreshProducts(r, plan, cached, match.Env)
	}
	spin(opt.WorkFactor)
	products, err := r.produce(match.Branch, match.Env)
	if err != nil {
		return nil, err
	}
	stored := append([]multiset.Tuple{multisetBranchMarker(match.Branch)}, products...)
	opt.Memo.StoreReaction(key, stored)
	return products, nil
}

// multisetBranchMarker encodes the branch index as a leading 1-tuple in the
// stored product list, so the Memo interface stays a plain tuple store.
func multisetBranchMarker(branch int) multiset.Tuple {
	return multiset.Tuple{value.Int(int64(branch))}
}

// refreshProducts rebuilds cached products for the current match: fields
// whose expressions mention the tag variable are re-evaluated (cheap), the
// rest — the expensive value computation — are reused.
func refreshProducts(r *Reaction, plan *memoPlan, cached []multiset.Tuple, env expr.MapEnv) ([]multiset.Tuple, error) {
	branch := int(cached[0].Value().AsInt())
	stored := cached[1:]
	if plan.tagVar == "" {
		return stored, nil
	}
	out := make([]multiset.Tuple, len(stored))
	for pi, t := range stored {
		flags := plan.reeval[branch][pi]
		fresh := t.Clone()
		for fi := range fresh {
			if flags[fi] {
				v, err := expr.Eval(r.Branches[branch].Products[pi][fi], env)
				if err != nil {
					return nil, fmt.Errorf("gamma: reaction %s memo refresh: %w", r.Name, err)
				}
				fresh[fi] = v
			}
		}
		out[pi] = fresh
	}
	return out, nil
}

// Run executes p on m until the stable state of Eq. 1 is reached: no reaction
// condition holds for any combination of multiset elements. The multiset is
// modified in place and holds the result on return. Execution follows
// Options: sequential deterministic or parallel nondeterministic.
func Run(p *Program, m *multiset.Multiset, opt Options) (*Stats, error) {
	for _, r := range p.Reactions {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	if opt.Workers <= 1 {
		return runSequential(p, m, opt)
	}
	return runParallel(p, m, opt)
}

// runSequential is the direct implementation of the Γ recursion (Eq. 1):
// while some (Ri, Ai) is enabled, replace the matched elements with the
// action's products; otherwise the multiset is the result. Reactions are
// visited round-robin for fairness. With Seed 0 matching is deterministic.
func runSequential(p *Program, m *multiset.Multiset, opt Options) (*Stats, error) {
	stats := newStats(1)
	var rng *rand.Rand
	if opt.Seed != 0 {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	n := len(p.Reactions)
	if n == 0 {
		return stats, nil
	}
	idleStreak := 0
	for i := 0; idleStreak < n; i = (i + 1) % n {
		r := p.Reactions[i]
		match, err := FindMatch(r, m, rng)
		if err != nil {
			return stats, err
		}
		if match == nil {
			idleStreak++
			continue
		}
		products, err := applyAction(r, match, opt, stats)
		if err != nil {
			return stats, err
		}
		if !m.TryRemoveAll(match.Chosen) {
			// Unreachable single-threaded; defensive.
			return stats, fmt.Errorf("gamma: matched elements vanished in sequential run of %s", r.Name)
		}
		m.AddAll(products)
		traceFiring(opt, r.Name, match.Chosen, products)
		stats.Steps++
		stats.Fired[r.Name]++
		idleStreak = 0
		if opt.MaxSteps > 0 && stats.Steps >= opt.MaxSteps {
			if enabled, err2 := Enabled(p, m); err2 == nil && enabled {
				return stats, ErrMaxSteps
			}
		}
	}
	return stats, nil
}

// parShared is the coordination state of the parallel runtime.
type parShared struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers int
	version uint64 // bumped on every successful commit
	idle    int
	done    bool
	err     error
	steps   int64
}

// runParallel executes reactions with a pool of workers performing
// optimistic grab–compute–commit cycles:
//
//  1. match: find an enabled combination of molecules (randomized order, the
//     model's nondeterminism);
//  2. compute: instantiate the enabled branch's products;
//  3. commit: atomically claim the matched molecules (TryRemoveAll); on
//     conflict with a concurrent worker, drop the products and rematch;
//  4. on success, insert the products and bump the multiset version.
//
// Global termination reproduces Eq. 1's stability test: a worker that scans
// every reaction without finding a match goes idle *at a version*; if the
// version is still current and all workers are idle at it, no molecule has
// changed since a full unsuccessful scan, so no reaction is enabled and the
// stable state is reached.
func runParallel(p *Program, m *multiset.Multiset, opt Options) (*Stats, error) {
	workers := opt.Workers
	sh := &parShared{workers: workers}
	sh.cond = sync.NewCond(&sh.mu)
	perWorker := make([]*Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		perWorker[w] = newStats(workers)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerLoop(p, m, opt, sh, perWorker[w], w)
		}(w)
	}
	wg.Wait()
	total := newStats(workers)
	for _, ps := range perWorker {
		total.merge(ps)
	}
	sh.mu.Lock()
	err := sh.err
	sh.mu.Unlock()
	return total, err
}

func workerLoop(p *Program, m *multiset.Multiset, opt Options, sh *parShared, stats *Stats, id int) {
	rng := rand.New(rand.NewSource(opt.Seed + int64(id)*0x9e3779b9 + 1))
	n := len(p.Reactions)
	for {
		sh.mu.Lock()
		if sh.done || sh.err != nil {
			sh.mu.Unlock()
			return
		}
		scanVersion := sh.version
		sh.mu.Unlock()

		fired := false
		start := rng.Intn(n)
		for k := 0; k < n; k++ {
			r := p.Reactions[(start+k)%n]
			match, err := FindMatch(r, m, rng)
			if err != nil {
				sh.fail(err)
				return
			}
			if match == nil {
				continue
			}
			products, err := applyAction(r, match, opt, stats)
			if err != nil {
				sh.fail(err)
				return
			}
			if !m.TryRemoveAll(match.Chosen) {
				stats.Conflicts++
				k-- // retry the same reaction: its molecules changed under us
				continue
			}
			m.AddAll(products)
			traceFiring(opt, r.Name, match.Chosen, products)
			stats.Steps++
			stats.Fired[r.Name]++
			fired = true

			sh.mu.Lock()
			sh.version++
			sh.steps++
			over := opt.MaxSteps > 0 && sh.steps >= opt.MaxSteps
			sh.cond.Broadcast()
			sh.mu.Unlock()
			if over {
				sh.fail(ErrMaxSteps)
				return
			}
			break
		}
		if fired {
			continue
		}
		// Full scan with no enabled reaction. Go idle at scanVersion; if all
		// workers are idle at an unchanged version, the multiset is stable.
		sh.mu.Lock()
		if sh.version != scanVersion {
			sh.mu.Unlock() // something committed mid-scan; rescan
			continue
		}
		sh.idle++
		if sh.idle == sh.workers { // all idle: stable state
			sh.done = true
			sh.cond.Broadcast()
			sh.mu.Unlock()
			return
		}
		for sh.version == scanVersion && !sh.done && sh.err == nil {
			sh.cond.Wait()
		}
		sh.idle--
		done := sh.done || sh.err != nil
		sh.mu.Unlock()
		if done {
			return
		}
	}
}

func (sh *parShared) fail(err error) {
	sh.mu.Lock()
	if sh.err == nil {
		sh.err = err
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// Plan is a sequential composition of parallel reaction groups: the paper's
// ';' operator over '|' groups (P1 ; P2 ; ...). Each program runs to its
// stable state before the next starts.
type Plan struct {
	Stages []*Program
}

// Sequence builds a Plan from programs run one after another.
func Sequence(stages ...*Program) *Plan { return &Plan{Stages: stages} }

// Run executes every stage in order on the same multiset, merging stats.
func (pl *Plan) Run(m *multiset.Multiset, opt Options) (*Stats, error) {
	total := newStats(opt.Workers)
	for _, stage := range pl.Stages {
		st, err := Run(stage, m, opt)
		total.merge(st)
		if err != nil {
			return total, fmt.Errorf("gamma: stage %s: %w", stage.Name, err)
		}
	}
	return total, nil
}
