package gamma

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/multiset"
	"repro/internal/value"
)

func TestDequeOwnerLIFOThiefFIFO(t *testing.T) {
	d := newDeque(8)
	for i := int32(0); i < 5; i++ {
		d.push(i)
	}
	if d.size() != 5 {
		t.Fatalf("size = %d, want 5", d.size())
	}
	if x, ok := d.steal(); !ok || x != 0 {
		t.Fatalf("steal = %d,%v, want oldest 0", x, ok)
	}
	if x, ok := d.pop(); !ok || x != 4 {
		t.Fatalf("pop = %d,%v, want newest 4", x, ok)
	}
	for _, want := range []int32{3, 2, 1} {
		if x, ok := d.pop(); !ok || x != want {
			t.Fatalf("pop = %d,%v, want %d", x, ok, want)
		}
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque succeeded")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque succeeded")
	}
	if d.size() != 0 {
		t.Fatalf("size = %d after drain, want 0", d.size())
	}
}

func TestDequeCapacityAndOverflow(t *testing.T) {
	for _, tc := range []struct{ want, cap int }{{1, 0}, {1, 1}, {4, 3}, {8, 8}, {16, 9}} {
		if d := newDeque(tc.cap); len(d.buf) != tc.want {
			t.Errorf("newDeque(%d) capacity = %d, want %d", tc.cap, len(d.buf), tc.want)
		}
	}
	d := newDeque(2)
	d.push(0)
	d.push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("push past capacity did not panic")
		}
	}()
	d.push(2)
}

// TestStealDequeConcurrent churns one owner (push/pop) against several
// thieves and checks that every pushed value is taken exactly once — the
// deque's only correctness obligation. Run under -race by make stress.
func TestStealDequeConcurrent(t *testing.T) {
	const n = 20000
	const thieves = 4
	d := newDeque(n)
	var stop atomic.Bool
	stolen := make([][]int32, thieves)
	var wg sync.WaitGroup
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for !stop.Load() {
				if x, ok := d.steal(); ok {
					stolen[th] = append(stolen[th], x)
				}
			}
		}(th)
	}
	var owned []int32
	for i := int32(0); i < n; i++ {
		d.push(i)
		if i%3 == 0 {
			if x, ok := d.pop(); ok {
				owned = append(owned, x)
			}
		}
	}
	for {
		x, ok := d.pop()
		if !ok {
			break
		}
		owned = append(owned, x)
	}
	stop.Store(true)
	wg.Wait()
	seen := make([]int, n)
	for _, x := range owned {
		seen[x]++
	}
	for _, batch := range stolen {
		for _, x := range batch {
			seen[x]++
		}
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %d taken %d times, want exactly once", v, c)
		}
	}
}

// TestStealVictimOrderDeterministic pins the steal scheduler's rng contract:
// for a fixed seed the victim sequence is reproducible, and each sweep visits
// every peer exactly once (no worker is ever starved of being stolen from).
func TestStealVictimOrderDeterministic(t *testing.T) {
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	var bufA, bufB []int
	const self, workers = 2, 8
	for round := 0; round < 100; round++ {
		bufA = victimOrder(rngA, self, workers, bufA)
		bufB = victimOrder(rngB, self, workers, bufB)
		if len(bufA) != workers-1 || len(bufB) != workers-1 {
			t.Fatalf("round %d: order lengths %d/%d, want %d", round, len(bufA), len(bufB), workers-1)
		}
		seen := map[int]bool{}
		for i, v := range bufA {
			if v != bufB[i] {
				t.Fatalf("round %d: same seed diverged: %v vs %v", round, bufA, bufB)
			}
			if v == self || v < 0 || v >= workers || seen[v] {
				t.Fatalf("round %d: bad victim %d in %v", round, v, bufA)
			}
			seen[v] = true
		}
	}
	if got := victimOrder(rngA, 0, 1, nil); len(got) != 0 {
		t.Fatalf("single worker has victims %v, want none", got)
	}
}

// TestStealBatchDifferential is the engine-equivalence suite for the
// work-stealing batch runtime: across worker counts and seeds, the parallel
// incremental engine must reach the sequential engine's stable state with the
// same step count (the min workload is confluent), and its new accounting
// must be self-consistent — every step belongs to a batch, batches never
// exceed steps, and claims lost to peers show up as conflicts, not silence.
func TestStealBatchDifferential(t *testing.T) {
	p := MustProgram("min", minReaction())
	for _, workers := range []int{2, 4, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			ref := intsMultiset()
			par := intsMultiset()
			for i := int64(1); i <= 200; i++ {
				ref.Add(multiset.New1(value.Int(i*13%1009 + 1)))
				par.Add(multiset.New1(value.Int(i*13%1009 + 1)))
			}
			want, err := Run(p, ref, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(p, par, Options{Workers: workers, Seed: seed})
			if err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}
			if !par.Equal(ref) {
				t.Fatalf("workers=%d seed=%d: stable states differ:\n par: %s\n seq: %s", workers, seed, par, ref)
			}
			if got.Steps != want.Steps {
				t.Errorf("workers=%d seed=%d: steps = %d, sequential = %d", workers, seed, got.Steps, want.Steps)
			}
			if got.Batches == 0 || got.Batches > got.Steps {
				t.Errorf("workers=%d seed=%d: batches = %d with steps = %d", workers, seed, got.Batches, got.Steps)
			}
			if got.Fired["R"] != got.Steps {
				t.Errorf("workers=%d seed=%d: fired = %d, steps = %d", workers, seed, got.Fired["R"], got.Steps)
			}
		}
	}
}

// TestStealBatchDifferentialExample1 repeats the equivalence check on the
// paper's §III-A1 program, whose three labeled reactions exercise the
// subscription wakeup path through the per-worker deques.
func TestStealBatchDifferentialExample1(t *testing.T) {
	for _, workers := range []int{2, 4} {
		for seed := int64(1); seed <= 5; seed++ {
			m := example1Input()
			st, err := Run(example1Program(), m, Options{Workers: workers, Seed: seed})
			if err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}
			if m.Len() != 1 || !m.Contains(multiset.Pair(value.Int(0), "m")) {
				t.Fatalf("workers=%d seed=%d: result = %s, want {[0,m]}", workers, seed, m)
			}
			if st.Steps != 3 {
				t.Errorf("workers=%d seed=%d: steps = %d, want 3", workers, seed, st.Steps)
			}
		}
	}
}
