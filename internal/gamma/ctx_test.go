package gamma

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/rt"
	"repro/internal/value"
)

// growProgram never stabilizes: [x, 'a'] -> [x + 1, 'a'].
func growProgram() *Program {
	return MustProgram("grow", &Reaction{
		Name:     "Grow",
		Patterns: []Pattern{{FVar("x"), FLabel("a")}},
		Branches: []Branch{{
			Products: []Template{{expr.MustParse("x + 1"), expr.MustParse("'a'")}},
		}},
	})
}

func growInit() *multiset.Multiset {
	m := multiset.New()
	for i := 0; i < 8; i++ {
		m.Add(multiset.Pair(value.Int(int64(i)), "a"))
	}
	return m
}

func TestRunContextExpiredDeadline(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
			defer cancel()
			<-ctx.Done()
			st, err := RunContext(ctx, growProgram(), growInit(), Options{Workers: workers})
			if !errors.Is(err, rt.ErrDeadline) {
				t.Errorf("err = %v, want rt.ErrDeadline", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v must satisfy errors.Is(_, context.DeadlineExceeded)", err)
			}
			if st == nil {
				t.Error("early exit must return partial Stats")
			}
		})
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			type outcome struct {
				st  *Stats
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				st, err := RunContext(ctx, growProgram(), growInit(), Options{Workers: workers})
				done <- outcome{st, err}
			}()
			time.Sleep(10 * time.Millisecond) // let the run get going
			start := time.Now()
			cancel()
			select {
			case o := <-done:
				if elapsed := time.Since(start); elapsed > 2*time.Second {
					t.Errorf("cancellation took %v to propagate", elapsed)
				}
				if !errors.Is(o.err, rt.ErrCanceled) || !errors.Is(o.err, context.Canceled) {
					t.Errorf("err = %v, want rt.ErrCanceled", o.err)
				}
				if o.st == nil {
					t.Fatal("canceled run must return partial Stats")
				}
				if o.st.Steps == 0 {
					t.Error("run canceled mid-flight should report the steps it made")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("canceled run wedged")
			}
		})
	}
}

func TestFaultInjectorError(t *testing.T) {
	boom := errors.New("injected")
	for _, workers := range []int{1, 4} {
		st, err := Run(growProgram(), growInit(), Options{
			Workers:       workers,
			FaultInjector: func(site string, worker int) error { return boom },
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want injected fault", workers, err)
		}
		if st == nil {
			t.Errorf("workers=%d: partial Stats missing", workers)
		}
	}
}

func TestFaultInjectorPanicRecovered(t *testing.T) {
	for _, workers := range []int{1, 4} {
		st, err := Run(growProgram(), growInit(), Options{
			Workers:       workers,
			FaultInjector: func(site string, worker int) error { panic("kaboom") },
		})
		var pe *rt.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v (%T), want *rt.PanicError", workers, err, err)
		}
		if pe.Runtime != "gamma" || pe.Site != "Grow" {
			t.Errorf("workers=%d: panic identity = %q/%q", workers, pe.Runtime, pe.Site)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: stack not captured", workers)
		}
		if st == nil {
			t.Errorf("workers=%d: partial Stats missing", workers)
		}
	}
}

// TestPanicDoesNotWedgePool runs many parallel executions where a worker
// panics at a pseudo-random point mid-run; every run must terminate (no
// leaked lock, no deadlocked termination detector) and classify the panic.
func TestPanicDoesNotWedgePool(t *testing.T) {
	var n atomic.Int64
	for i := 0; i < 25; i++ {
		_, err := Run(growProgram(), growInit(), Options{
			Workers:  4,
			Seed:     int64(i),
			MaxSteps: 10_000,
			FaultInjector: func(site string, worker int) error {
				if n.Add(1)%17 == 0 {
					panic("random worker death")
				}
				return nil
			},
		})
		var pe *rt.PanicError
		if err != nil && !errors.As(err, &pe) && !errors.Is(err, ErrMaxSteps) {
			t.Fatalf("iteration %d: unexpected error %v", i, err)
		}
	}
}

// TestRetriesCounted checks the commit-conflict accounting contract:
// Retries never exceeds Conflicts, and the counters survive merging.
func TestRetriesCounted(t *testing.T) {
	p := MustProgram("min", &Reaction{
		Name:     "Min",
		Patterns: []Pattern{{FVar("x")}, {FVar("y")}},
		Branches: []Branch{{
			Cond:     expr.MustParse("x < y"),
			Products: []Template{{expr.MustParse("x")}},
		}},
	})
	for seed := int64(0); seed < 10; seed++ {
		m := multiset.New()
		for i := 0; i < 400; i++ {
			m.Add(multiset.New1(value.Int(int64(i))))
		}
		st, err := Run(p, m, Options{Workers: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if st.Retries > st.Conflicts {
			t.Fatalf("Retries (%d) cannot exceed Conflicts (%d)", st.Retries, st.Conflicts)
		}
	}
}
