// Delta-driven reaction scheduling: the static subscription index behind the
// incremental matching engine.
//
// The Γ fixpoint of Eq. 1 rewrites the multiset until no reaction is enabled.
// The seed engine re-probed every reaction after every commit — O(reactions ×
// candidates) per step even when the commit touched a single label. The
// incremental engine exploits two facts:
//
//  1. Matching is monotone: removing elements can never enable a reaction,
//     because patterns only require the presence of elements (the model has
//     no negative conditions). Only additions create new match opportunities.
//  2. A pattern whose label field is a literal (the shape Algorithm 1 always
//     emits) can only consume elements carrying exactly that label; adding
//     an element with a different label cannot enable it.
//
// So at program setup we compute label → reactions once, and after each
// commit only the reactions subscribed to a label that was actually added —
// plus the wildcard bucket of reactions with at least one generic pattern —
// need re-probing. A reaction that failed to match stays provably disabled
// until one of its subscriptions fires: the RETE-style delta strategy of
// production rule engines, applied to Gamma without touching the
// nondeterministic semantics of §II-B.
package gamma

import "repro/internal/symtab"

// subscriptions is the immutable label → reactions index of one Program,
// computed once per program (reactions are immutable after Validate).
type subscriptions struct {
	// byLabel lists, per literal label, the indexes of reactions with at
	// least one pattern subscribing to that label, ascending.
	byLabel map[string][]int
	// bySym is byLabel keyed by interned label symbol — the form the hot
	// commit path consumes (ApplyDelta reports produce deltas as symbols, so
	// wakeups never materialize label strings).
	bySym map[symtab.Sym][]int
	// wildcard lists reactions with at least one generic pattern (no literal
	// label): any added element may feed such a pattern, so these wake on
	// every commit.
	wildcard []int
}

// buildSubscriptions derives the index from the reactions' patterns.
func buildSubscriptions(reactions []*Reaction) *subscriptions {
	sub := &subscriptions{
		byLabel: make(map[string][]int),
		bySym:   make(map[symtab.Sym][]int),
	}
	for i, r := range reactions {
		generic := false
		var labels []string
		for _, p := range r.Patterns {
			label, ok := patternLabel(p)
			if !ok {
				generic = true
				break
			}
			seen := false
			for _, have := range labels {
				if have == label {
					seen = true
					break
				}
			}
			if !seen {
				labels = append(labels, label)
			}
		}
		if generic {
			sub.wildcard = append(sub.wildcard, i)
			continue
		}
		for _, label := range labels {
			sub.byLabel[label] = append(sub.byLabel[label], i)
			sym := symtab.Intern(label)
			sub.bySym[sym] = append(sub.bySym[sym], i)
		}
	}
	return sub
}

// forEach invokes fn for every reaction that may have become newly enabled by
// a commit that added elements with the given labels (multiset.NoLabel marks
// unlabeled elements — those can only feed generic patterns, hence only wake
// the wildcard bucket). fn may be invoked more than once for the same
// reaction; callers dedupe through their dirty/queued flags.
func (sub *subscriptions) forEach(labels []string, fn func(idx int)) {
	for _, i := range sub.wildcard {
		fn(i)
	}
	for _, label := range labels {
		// A NoLabel delta wakes nothing here: literal-label patterns cannot
		// match an unlabeled tuple. (A real "\x00" label, however unlikely,
		// resolves through the map like any other and stays sound.)
		for _, i := range sub.byLabel[label] {
			fn(i)
		}
	}
}

// forEachSym is forEach over interned label symbols — the delta form
// ApplyDelta reports (multiset.NoLabelSym marks unlabeled elements; like
// NoLabel in forEach, it wakes only the wildcard bucket because no literal
// label pattern interned it into bySym).
func (sub *subscriptions) forEachSym(syms []symtab.Sym, fn func(idx int)) {
	for _, i := range sub.wildcard {
		fn(i)
	}
	for _, sym := range syms {
		for _, i := range sub.bySym[sym] {
			fn(i)
		}
	}
}

// subs returns the program's subscription index, building it on first use.
func (p *Program) subs() *subscriptions {
	p.subsOnce.Do(func() { p.subsIdx = buildSubscriptions(p.Reactions) })
	return p.subsIdx
}
