package gamma

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/multiset"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// checkTelemetryAgrees holds the registry counters to exact agreement with
// the Stats the run returned — the telemetry layer's correctness contract:
// every counter increment sits adjacent to its Stats field increment.
func checkTelemetryAgrees(t *testing.T, rec *telemetry.Recorder, st *Stats) {
	t.Helper()
	reg := rec.Metrics
	for _, c := range []struct {
		name string
		want int64
	}{
		{"gamma.steps", st.Steps},
		{"gamma.probes", st.Probes},
		{"gamma.conflicts", st.Conflicts},
		{"gamma.retries", st.Retries},
		{"gamma.memo_hits", st.MemoHits},
		{"gamma.steals", st.Steals},
		{"gamma.batches", st.Batches},
		{"gamma.backoff_waits", st.BackoffWaits},
	} {
		if got := reg.CounterValue(c.name); got != c.want {
			t.Errorf("counter %s = %d, stats say %d", c.name, got, c.want)
		}
	}
	for name, want := range st.Fired {
		if got := reg.CounterValue("gamma.fired." + name); got != want {
			t.Errorf("counter gamma.fired.%s = %d, stats say %d", name, got, want)
		}
	}
}

func TestTelemetryDifferentialSequential(t *testing.T) {
	for _, fullScan := range []bool{false, true} {
		rec := telemetry.New(0)
		m := intsMultiset()
		for i := int64(1); i <= 200; i++ {
			m.Add(multiset.New1(value.Int(i*7%211 + 1)))
		}
		p := MustProgram("min", minReaction())
		st, err := Run(p, m, Options{FullScan: fullScan, Recorder: rec})
		if err != nil {
			t.Fatalf("fullScan=%v: %v", fullScan, err)
		}
		checkTelemetryAgrees(t, rec, st)
		if st.Steps == 0 {
			t.Fatalf("fullScan=%v: run did no work", fullScan)
		}
	}
}

func TestTelemetryDifferentialParallel(t *testing.T) {
	for _, workers := range []int{2, 4} {
		rec := telemetry.New(0)
		m := intsMultiset()
		for i := int64(1); i <= 300; i++ {
			m.Add(multiset.New1(value.Int(i)))
		}
		p := MustProgram("min", minReaction())
		st, err := Run(p, m, Options{Workers: workers, Seed: int64(workers), Recorder: rec})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkTelemetryAgrees(t, rec, st)
		if st.Steps != 299 {
			t.Errorf("workers=%d: steps = %d, want 299", workers, st.Steps)
		}
	}
}

func TestTelemetryDifferentialFaultInjected(t *testing.T) {
	boom := errors.New("injected")
	for _, workers := range []int{1, 4} {
		rec := telemetry.New(0)
		m := intsMultiset()
		for i := int64(1); i <= 100; i++ {
			m.Add(multiset.New1(value.Int(i)))
		}
		var fired atomic.Int64 // the injector runs on every worker concurrently
		p := MustProgram("min", minReaction())
		st, err := Run(p, m, Options{
			Workers: workers, Seed: 7, Recorder: rec,
			FaultInjector: func(site string, worker int) error {
				if fired.Add(1) > 20 {
					return boom
				}
				return nil
			},
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want injected fault", workers, err)
		}
		if st == nil {
			t.Fatalf("workers=%d: no partial stats", workers)
		}
		// The run died mid-flight: the registry must still mirror the partial
		// Stats exactly, including the work that never committed.
		checkTelemetryAgrees(t, rec, st)
	}
}

func TestTelemetryDifferentialMemo(t *testing.T) {
	rec := telemetry.New(0)
	memo := mapMemo{}
	run := func(rec *telemetry.Recorder) *Stats {
		t.Helper()
		m := example1Input()
		st, err := Run(example1Program(), m, Options{Memo: memo, Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	run(rec) // populate the memo
	st := run(rec)
	if st.MemoHits == 0 {
		t.Fatal("second run should hit the memo")
	}
	// Counters accumulated over both runs; compare against their sum.
	if got := rec.Metrics.CounterValue("gamma.memo_hits"); got != st.MemoHits {
		t.Errorf("memo_hits counter = %d, want %d", got, st.MemoHits)
	}
}

// TestTelemetryEventsSequential pins the event-level contract of a traced
// run: one firing span per step on the worker track, cardinality in Arg.
func TestTelemetryEventsSequential(t *testing.T) {
	rec := telemetry.New(0)
	m := example1Input()
	st, err := Run(example1Program(), m, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap) != 1 || snap[0].Name != "gamma/w0" {
		t.Fatalf("tracks = %v, want [gamma/w0]", trackNames(snap))
	}
	firings := 0
	for _, e := range snap[0].Events {
		if e.Kind == telemetry.KindFiring {
			firings++
			if e.Arg <= 0 {
				t.Errorf("firing %s: cardinality payload %d, want > 0", e.Name, e.Arg)
			}
		}
	}
	if int64(firings) != st.Steps {
		t.Errorf("firing events = %d, steps = %d", firings, st.Steps)
	}
}

func trackNames(snap []telemetry.TrackEvents) []string {
	names := make([]string, len(snap))
	for i, tr := range snap {
		names[i] = tr.Name
	}
	return names
}

// TestTelemetryVerboseProbeEvents checks the Verbose escalation: probe
// instants appear on the track and match the probe counter.
func TestTelemetryVerboseProbeEvents(t *testing.T) {
	rec := telemetry.New(0)
	rec.Verbose = true
	m := example1Input()
	st, err := Run(example1Program(), m, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	probes := int64(0)
	for _, tr := range rec.Snapshot() {
		for _, e := range tr.Events {
			if e.Kind == telemetry.KindProbe {
				probes++
			}
		}
	}
	if probes != st.Probes {
		t.Errorf("probe events = %d, stats.Probes = %d", probes, st.Probes)
	}
}

// TestTelemetryTrackLabel checks the dist-facing naming override.
func TestTelemetryTrackLabel(t *testing.T) {
	rec := telemetry.New(0)
	m := example1Input()
	if _, err := Run(example1Program(), m, Options{Recorder: rec, TrackLabel: "node3"}); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap) != 1 || snap[0].Name != "node3/w0" {
		t.Fatalf("tracks = %v, want [node3/w0]", trackNames(snap))
	}
}

// TestTelemetryDisabledIsNil guards the fast path: with no recorder the
// sinks must resolve to nil (one branch per record site, nothing else).
func TestTelemetryDisabledIsNil(t *testing.T) {
	if s := newTelSink(Options{}, example1Program(), 0); s != nil {
		t.Fatalf("sink without recorder = %+v, want nil", s)
	}
	var nilSink *telSink
	// Every method must be a no-op on the nil receiver, not a panic.
	nilSink.probe("r")
	nilSink.firing(0, "r", nilSink.begin(), multiset.New(), 0, 0)
	nilSink.batchCommit(0, "r", nilSink.begin(), multiset.New(), 0, 0, 1)
	nilSink.conflict("r")
	nilSink.conflictN("r", 2)
	nilSink.retry("r")
	nilSink.memoHit()
	nilSink.steal()
	nilSink.backoffWait()
}

func ExampleOptions_recorder() {
	rec := telemetry.New(0)
	m := example1Input()
	st, _ := Run(example1Program(), m, Options{Recorder: rec})
	fmt.Println(st.Steps, rec.Metrics.CounterValue("gamma.steps"))
	// Output: 3 3
}
