// Work-stealing scheduling state of the parallel runtime.
//
// The seed parallel runner kept one shared FIFO of reaction indexes behind
// the coordination mutex: every pop, every re-enqueue and every commit's
// subscriber wakeups serialized on the same lock the termination protocol
// uses, so past a few workers the scheduler itself became the bottleneck
// (ROADMAP item 2). This file replaces the shared queue with one bounded
// Chase-Lev deque per worker: owners push and pop lock-free at the bottom,
// idle workers steal lock-free from victims' tops, and the coordination
// mutex shrinks to what genuinely needs it — the idle/termination protocol
// and the error latch.
//
// Membership dedup keeps the seed semantics: a global per-reaction atomic
// flag is claimed (CAS false→true) before a push and released *before* the
// taker probes, so a commit that lands mid-probe re-enqueues the reaction
// rather than losing the wakeup. The flags also bound total deque occupancy
// by the reaction count, which makes the fixed deque capacity (next power of
// two ≥ len(reactions)) impossible to overflow.
package gamma

import "sync/atomic"

// deque is a fixed-capacity Chase-Lev work-stealing deque of reaction
// indexes. The owner pushes and pops at the bottom (LIFO keeps recently
// woken reactions hot in cache); thieves steal from the top (FIFO, oldest
// first). All slots are atomics so the unsynchronized top/bottom handoff is
// both correct and race-detector clean.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    []atomic.Int32
	mask   int64
}

func newDeque(capacity int) *deque {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &deque{buf: make([]atomic.Int32, c), mask: int64(c - 1)}
}

// push appends x at the bottom. Owner only.
func (d *deque) push(x int32) {
	b := d.bottom.Load()
	if b-d.top.Load() >= int64(len(d.buf)) {
		// Unreachable: the queued flags bound occupancy by len(reactions) and
		// capacity is at least that. A panic beats silent loss of a wakeup.
		panic("gamma: work deque overflow")
	}
	d.buf[b&d.mask].Store(x)
	d.bottom.Store(b + 1)
}

// pop removes the newest element. Owner only.
func (d *deque) pop() (int32, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(t)
		return 0, false
	}
	x := d.buf[b&d.mask].Load()
	if t == b {
		// Last element: race the thieves for it.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if !won {
			return 0, false
		}
	}
	return x, true
}

// steal removes the oldest element. Safe from any goroutine; a false return
// means empty or a lost race with the owner or another thief — the caller
// just moves to the next victim.
func (d *deque) steal() (int32, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false
	}
	x := d.buf[t&d.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return 0, false
	}
	return x, true
}

// size reports the current occupancy (approximate under concurrency; used
// for telemetry only).
func (d *deque) size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// victimOrder fills buf with the steal order for worker self among workers
// peers: every other worker exactly once, starting at an offset drawn from
// the worker's seeded rng. Deriving the order from the stream (rather than
// from shared mutable state) is what makes single-worker runs — and the
// scheduler unit tests — deterministic for a fixed seed.
func victimOrder(rng interface{ Intn(int) int }, self, workers int, buf []int) []int {
	buf = buf[:0]
	if workers <= 1 {
		return buf
	}
	off := rng.Intn(workers - 1)
	for i := 0; i < workers-1; i++ {
		buf = append(buf, (self+1+(off+i)%(workers-1))%workers)
	}
	return buf
}
