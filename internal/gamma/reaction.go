// Package gamma implements the Gamma computational model (Banâtre & Le
// Métayer's General Abstract Model for Multiset mAnipulation) as defined in
// §II-B of the paper: programs are sets of (Reaction condition, Action) pairs
// applied to a multiset until a stable state is reached (Eq. 1), with both a
// sequential interpreter and a nondeterministic parallel runtime.
package gamma

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

// Field is one position of a replace-list pattern: either a binding variable
// (Var non-empty) or a literal that must match exactly (Lit valid). In the
// paper's notation, [id1, 'A1', v] is three fields: variable id1, literal
// 'A1', variable v.
type Field struct {
	Var string
	Lit value.Value
}

// FVar returns a variable field.
func FVar(name string) Field { return Field{Var: name} }

// FLit returns a literal field.
func FLit(v value.Value) Field { return Field{Lit: v} }

// FLabel returns a literal string field, the edge-label convention.
func FLabel(label string) Field { return Field{Lit: value.Str(label)} }

func (f Field) String() string {
	if f.Var != "" {
		return f.Var
	}
	return f.Lit.String()
}

// Pattern matches one multiset element of exactly len(Pattern) fields.
type Pattern []Field

func (p Pattern) String() string {
	parts := make([]string, len(p))
	for i, f := range p {
		parts[i] = f.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// match attempts to match tuple t against p, extending env. It reports
// success and the list of names newly bound (for backtracking).
func (p Pattern) match(t multiset.Tuple, env expr.MapEnv) (bound []string, ok bool) {
	if len(t) != len(p) {
		return nil, false
	}
	for i, f := range p {
		if f.Var == "" {
			if !value.Equal(f.Lit, t[i]) {
				unbind(env, bound)
				return nil, false
			}
			continue
		}
		if prev, exists := env[f.Var]; exists {
			// Repeated variable: equality constraint, the mechanism the
			// paper uses to force same-iteration operands (shared tag v).
			if !value.Equal(prev, t[i]) {
				unbind(env, bound)
				return nil, false
			}
			continue
		}
		env[f.Var] = t[i]
		bound = append(bound, f.Var)
	}
	return bound, true
}

func unbind(env expr.MapEnv, names []string) {
	for _, n := range names {
		delete(env, n)
	}
}

// Template is one product element: a tuple of expressions evaluated under the
// match bindings. In R1 of the paper, [id1 + id2, 'B2'] is a two-field
// template.
type Template []expr.Expr

func (tpl Template) String() string {
	parts := make([]string, len(tpl))
	for i, e := range tpl {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// instantiate evaluates the template under env into a concrete tuple.
func (tpl Template) instantiate(env expr.Env) (multiset.Tuple, error) {
	out := make(multiset.Tuple, len(tpl))
	for i, e := range tpl {
		v, err := expr.Eval(e, env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Branch is one "by ... [if cond]" clause. A nil Cond is the else branch
// (always enabled). Empty Products is the paper's "by 0": the matched
// elements are consumed and nothing is produced (how steer reactions discard
// the false path in R15–R17).
type Branch struct {
	Cond     expr.Expr
	Products []Template
}

// Reaction is one (condition, action) pair of the Γ operator. A reaction is
// enabled on a multiset when some combination of elements matches Patterns
// with consistent bindings and at least one Branch condition holds; firing
// replaces the matched elements with the enabled branch's products.
//
// Branches are tried in order and the first enabled one fires, mirroring the
// paper's "by P1 if C / by P2 else" notation. When no branch is enabled for a
// binding, that binding does not fire — so a sole "by P if C" acts as a
// reaction condition in the sense of Eq. 2's "where" clause.
type Reaction struct {
	Name     string
	Patterns []Pattern
	Branches []Branch

	planOnce sync.Once
	plan     *memoPlan

	kernOnce sync.Once
	kern     *kernel
}

// Arity returns the number of elements the reaction consumes.
func (r *Reaction) Arity() int { return len(r.Patterns) }

// Validate checks structural well-formedness: at least one pattern and one
// branch, every expression variable bound by some pattern, and at most one
// else branch, in final position.
func (r *Reaction) Validate() error {
	if len(r.Patterns) == 0 {
		return fmt.Errorf("gamma: reaction %s has no replace list", r.Name)
	}
	if len(r.Branches) == 0 {
		return fmt.Errorf("gamma: reaction %s has no by clause", r.Name)
	}
	boundVars := make(map[string]bool)
	for _, p := range r.Patterns {
		if len(p) == 0 {
			return fmt.Errorf("gamma: reaction %s has an empty pattern", r.Name)
		}
		for _, f := range p {
			if f.Var != "" {
				boundVars[f.Var] = true
			} else if !f.Lit.IsValid() {
				return fmt.Errorf("gamma: reaction %s has a field with neither var nor literal", r.Name)
			}
		}
	}
	checkExpr := func(e expr.Expr, where string) error {
		for _, v := range expr.FreeVars(e) {
			if !boundVars[v] {
				return fmt.Errorf("gamma: reaction %s: variable %s in %s is not bound by the replace list", r.Name, v, where)
			}
		}
		return nil
	}
	for i, b := range r.Branches {
		if b.Cond == nil && i != len(r.Branches)-1 {
			return fmt.Errorf("gamma: reaction %s: else branch must be last", r.Name)
		}
		if b.Cond != nil {
			if err := checkExpr(b.Cond, "condition"); err != nil {
				return err
			}
		}
		for _, tpl := range b.Products {
			for _, e := range tpl {
				if err := checkExpr(e, "product"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// selectBranch returns the index of the first enabled branch under env, or -1
// when no branch is enabled (the binding does not fire).
func (r *Reaction) selectBranch(env expr.Env) (int, error) {
	for i, b := range r.Branches {
		if b.Cond == nil {
			return i, nil
		}
		ok, err := expr.EvalBool(b.Cond, env)
		if err != nil {
			return -1, fmt.Errorf("gamma: reaction %s condition: %w", r.Name, err)
		}
		if ok {
			return i, nil
		}
	}
	return -1, nil
}

// ReplayFiring re-executes one recorded firing of r: chosen must hold the
// consumed tuples in pattern order (the order the schedule recorder emits);
// each is matched against its pattern with consistent bindings, the first
// enabled branch is selected, and its products are returned. A replay engine
// compares them against the recorded products to verify that the reaction's
// kernel still reproduces the original execution. Errors name the failing
// pattern or report that no branch is enabled — both are divergences, not
// program bugs.
func (r *Reaction) ReplayFiring(chosen []multiset.Tuple) ([]multiset.Tuple, error) {
	if len(chosen) != len(r.Patterns) {
		return nil, fmt.Errorf("gamma: reaction %s consumes %d elements, schedule step has %d", r.Name, len(r.Patterns), len(chosen))
	}
	env := make(expr.MapEnv)
	for i, p := range r.Patterns {
		if _, ok := p.match(chosen[i], env); !ok {
			return nil, fmt.Errorf("gamma: reaction %s: element %s does not match pattern %s", r.Name, chosen[i], p)
		}
	}
	branch, err := r.selectBranch(env)
	if err != nil {
		return nil, err
	}
	if branch < 0 {
		return nil, fmt.Errorf("gamma: reaction %s: no branch enabled for the recorded elements", r.Name)
	}
	return r.produce(branch, env)
}

// produce instantiates the products of branch idx under env.
func (r *Reaction) produce(idx int, env expr.Env) ([]multiset.Tuple, error) {
	b := r.Branches[idx]
	out := make([]multiset.Tuple, 0, len(b.Products))
	for _, tpl := range b.Products {
		t, err := tpl.instantiate(env)
		if err != nil {
			return nil, fmt.Errorf("gamma: reaction %s action: %w", r.Name, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// String renders the reaction in the paper's listing style.
func (r *Reaction) String() string {
	var b strings.Builder
	if r.Name != "" {
		fmt.Fprintf(&b, "%s = ", r.Name)
	}
	b.WriteString("replace ")
	for i, p := range r.Patterns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	for i, br := range r.Branches {
		b.WriteString("\n  by ")
		if len(br.Products) == 0 {
			b.WriteString("0")
		} else {
			for j, tpl := range br.Products {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(tpl.String())
			}
		}
		switch {
		case br.Cond != nil:
			b.WriteString("\n  if " + br.Cond.String())
		case i > 0:
			b.WriteString("\n  else")
		}
	}
	return b.String()
}

// Program is a set of reactions composed in parallel (R1 | R2 | ... | Rn),
// the composition used throughout the paper's examples.
//
// Reactions are treated as immutable once the program runs: the runtime
// caches the label → reactions subscription index (see schedule.go) on first
// execution.
type Program struct {
	Name      string
	Reactions []*Reaction

	subsOnce sync.Once
	subsIdx  *subscriptions
}

// NewProgram builds a program and validates every reaction.
func NewProgram(name string, reactions ...*Reaction) (*Program, error) {
	for _, r := range reactions {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return &Program{Name: name, Reactions: reactions}, nil
}

// MustProgram is NewProgram that panics on error; for tests and fixtures.
func MustProgram(name string, reactions ...*Reaction) *Program {
	p, err := NewProgram(name, reactions...)
	if err != nil {
		panic(err)
	}
	return p
}

// Reaction returns the reaction with the given name, or nil.
func (p *Program) Reaction(name string) *Reaction {
	for _, r := range p.Reactions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// String renders all reactions separated by blank lines.
func (p *Program) String() string {
	parts := make([]string, len(p.Reactions))
	for i, r := range p.Reactions {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n\n")
}
