//go:build !race

package gamma

const raceEnabled = false
