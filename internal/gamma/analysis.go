package gamma

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

// TerminationHint is the verdict of the static termination analysis.
type TerminationHint int

const (
	// TerminationUnknown means the analysis cannot decide; the program may
	// or may not reach Eq. 1's stable state (Gamma termination is
	// undecidable in general — use Options.MaxSteps as the runtime guard).
	TerminationUnknown TerminationHint = iota
	// TerminationGuaranteed means every reaction strictly shrinks the
	// multiset, so execution must stop within |M|-1 firings.
	TerminationGuaranteed
	// TerminationNever means some reaction both strictly grows the multiset
	// and can re-enable itself forever (a self-feeding label); reaching a
	// stable state is impossible once it fires.
	TerminationNever
)

func (h TerminationHint) String() string {
	switch h {
	case TerminationGuaranteed:
		return "guaranteed"
	case TerminationNever:
		return "never (diverges once enabled)"
	default:
		return "unknown"
	}
}

// AnalyzeTermination applies two classic syntactic criteria to a program:
//
//   - size decrease: if every branch of every reaction produces strictly
//     fewer elements than the reaction consumes, the multiset size is a
//     strictly decreasing variant and the program terminates on every input
//     (Eq. 2's min, the prime sieve's erasure, and all "by 0" discards are
//     in this class);
//   - self-feeding growth: a reaction whose branch produces at least as many
//     elements as it consumes, entirely with labels that the same branch's
//     patterns accept back, keeps itself enabled forever (the x → x+1
//     divergence test programs are in this class).
//
// Everything else — notably converted dataflow loops, whose termination
// depends on data — reports TerminationUnknown. The explanation string says
// which reaction drove the verdict.
func AnalyzeTermination(p *Program) (TerminationHint, string) {
	allShrink := true
	for _, r := range p.Reactions {
		consumed := len(r.Patterns)
		// Labels this reaction's patterns accept literally.
		accepts := make(map[string]bool)
		generic := false // a pattern with a variable label accepts anything
		for _, pat := range r.Patterns {
			if len(pat) >= 2 {
				if pat[1].Var != "" {
					generic = true
				} else if pat[1].Lit.IsValid() {
					accepts[pat[1].Lit.String()] = true
				}
			} else {
				generic = true // bare scalars match any 1-tuple... conservatively
			}
		}
		for bi, b := range r.Branches {
			if len(b.Products) >= consumed {
				allShrink = false
				// Self-feeding check: every product's label is accepted back
				// by this reaction's own patterns, the branch produces at
				// least as much as it consumes, and the branch has no
				// condition to run out of (an unconditional or else branch).
				if b.Cond == nil && len(b.Products) > 0 {
					feeds := true
					for _, tpl := range b.Products {
						label := ""
						if len(tpl) >= 2 {
							if lit, ok := tpl[1].(interface{ String() string }); ok {
								label = lit.String()
							}
						}
						if !generic && !accepts[label] {
							feeds = false
							break
						}
					}
					if feeds && len(b.Products) >= consumed {
						return TerminationNever, fmt.Sprintf(
							"reaction %s branch %d replaces %d element(s) with %d whose labels it consumes itself",
							r.Name, bi, consumed, len(b.Products))
					}
				}
			}
		}
	}
	if allShrink {
		return TerminationGuaranteed, "every branch of every reaction strictly shrinks the multiset"
	}
	var grow []string
	for _, r := range p.Reactions {
		for _, b := range r.Branches {
			if len(b.Products) >= len(r.Patterns) {
				grow = append(grow, r.Name)
				break
			}
		}
	}
	return TerminationUnknown, "reactions " + strings.Join(grow, ", ") + " do not shrink the multiset; termination is data-dependent"
}

// DeadReactions returns the names of reactions that can never fire on any
// execution starting from init, by a label-reachability fixpoint: a label is
// reachable if an initial element carries it or a potentially enabled
// reaction produces it; a reaction is potentially enabled only if every
// literal-labelled pattern names a reachable label. Patterns with variable
// labels (or without a label field) match conservatively; a product whose
// label position is not a string literal makes every label reachable.
//
// This is a conservative over-approximation of liveness — a reported
// reaction is definitely dead (it consumes a label nothing can produce), but
// unreported reactions may still never fire for value-dependent reasons. It
// is the Gamma analogue of dead-code detection on a dataflow graph, and a
// useful lint for hand-written programs (a typo in an edge label makes the
// downstream reactions dead, and the program silently stops early).
func DeadReactions(p *Program, init *multiset.Multiset) []string {
	reachable := make(map[string]bool)
	anyLabel := false    // some product can mint arbitrary labels
	hasElements := false // the multiset can be non-empty at all
	if init != nil {
		init.ForEach(func(t multiset.Tuple, _ int) bool {
			hasElements = true
			if label, ok := t.Label(); ok {
				reachable[label] = true
			}
			// Unlabelled elements enable generic patterns via hasElements,
			// but never a literal-label pattern: a label field cannot match
			// an element that has none.
			return true
		})
	}
	live := make(map[string]bool, len(p.Reactions))
	for changed := true; changed; {
		changed = false
		for _, r := range p.Reactions {
			if live[r.Name] {
				continue
			}
			enabled := hasElements
			for _, pat := range r.Patterns {
				if len(pat) >= 2 && pat[1].Var == "" && pat[1].Lit.Kind() == value.KindString {
					if !reachable[pat[1].Lit.AsString()] && !anyLabel {
						enabled = false
						break
					}
				}
				// Variable or absent label: matches any element; hasElements
				// already accounts for emptiness.
			}
			if !enabled {
				continue
			}
			live[r.Name] = true
			changed = true
			for _, b := range r.Branches {
				for _, tpl := range b.Products {
					if len(tpl) < 2 {
						continue
					}
					if label, isLit := productLabel(tpl[1]); isLit {
						reachable[label] = true
					} else {
						anyLabel = true
					}
				}
			}
		}
	}
	var dead []string
	for _, r := range p.Reactions {
		if !live[r.Name] {
			dead = append(dead, r.Name)
		}
	}
	sort.Strings(dead)
	return dead
}

// productLabel extracts the literal string label of a product's label field.
func productLabel(e expr.Expr) (string, bool) {
	if lit, ok := e.(expr.Lit); ok && lit.Val.Kind() == value.KindString {
		return lit.Val.AsString(), true
	}
	return "", false
}
