package gamma

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

// findMatchOracle is the interpreted matcher the kernel replaced: a
// backtracking search using Pattern.match over a MapEnv and the tree-walking
// selectBranch. Candidate order mirrors the kernel's deterministic
// enumeration: patterns with a literal label walk ascending key order (label
// and tag filtering only skip candidates that would fail Pattern.match
// anyway, so the key-ordered walk finds the same first match as the indexed
// walk), while generic patterns walk the whole multiset in the same
// state-derived rotated order as IterAllRot.
func findMatchOracle(r *Reaction, m *multiset.Multiset) (*Match, error) {
	cands := m.AllCounted()
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].Key < cands[i].Key {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	var rotCands []multiset.Counted
	m.IterAllRot(detRotation(m.Len()), func(t multiset.Tuple, n int, key string) bool {
		rotCands = append(rotCands, multiset.Counted{Tuple: t, N: n, Key: key})
		return true
	})
	s := &oracleSearcher{r: r, cands: cands, rotCands: rotCands,
		env:    make(expr.MapEnv),
		used:   make(map[string]int),
		chosen: make([]multiset.Tuple, len(r.Patterns)),
	}
	ok := s.search(0)
	if s.err != nil {
		return nil, s.err
	}
	if !ok {
		return nil, nil
	}
	return &Match{Chosen: s.chosen, Env: s.env, Branch: s.branch}, nil
}

type oracleSearcher struct {
	r        *Reaction
	cands    []multiset.Counted // ascending key order, for labeled patterns
	rotCands []multiset.Counted // IterAllRot order, for generic patterns
	env      expr.MapEnv
	used     map[string]int
	chosen   []multiset.Tuple
	branch   int
	err      error
}

func (s *oracleSearcher) search(i int) bool {
	if i == len(s.r.Patterns) {
		idx, err := s.r.selectBranch(s.env)
		if err != nil {
			s.err = err
			return false
		}
		if idx < 0 {
			return false
		}
		s.branch = idx
		return true
	}
	cands := s.cands
	if _, hasLabel := patternLabel(s.r.Patterns[i]); !hasLabel {
		cands = s.rotCands
	}
	for _, c := range cands {
		if s.used[c.Key] >= c.N {
			continue
		}
		bound, ok := s.r.Patterns[i].match(c.Tuple, s.env)
		if !ok {
			continue
		}
		s.used[c.Key]++
		s.chosen[i] = c.Tuple
		if s.search(i + 1) {
			return true
		}
		s.used[c.Key]--
		unbind(s.env, bound)
		if s.err != nil {
			return false
		}
	}
	return false
}

// randReaction builds a random reaction over labels A/B and a small variable
// pool: mixed literal/variable fields, shared tag variables (the repeated-
// variable equality constraint), guarded and else branches.
func randReaction(rng *rand.Rand) *Reaction {
	vars := []string{"x", "y", "z"}
	npat := 1 + rng.Intn(2)
	r := &Reaction{Name: fmt.Sprintf("rr%d", rng.Int63n(1000))}
	for pi := 0; pi < npat; pi++ {
		p := Pattern{FVar(vars[pi])}
		if rng.Intn(4) > 0 {
			p = append(p, FLabel([]string{"A", "B"}[rng.Intn(2)]))
		} else {
			p = append(p, FVar(fmt.Sprintf("l%d", pi)))
		}
		switch rng.Intn(3) {
		case 0:
			p = append(p, FVar("v")) // shared tag across patterns
		case 1:
			p = append(p, FLit(value.Int(int64(rng.Intn(2)))))
		}
		r.Patterns = append(r.Patterns, p)
	}
	guard := expr.Binary{Op: "<", L: expr.Var{Name: "x"}, R: expr.Lit{Val: value.Int(int64(rng.Intn(5)))}}
	prod := Template{
		expr.Binary{Op: "+", L: expr.Var{Name: "x"}, R: expr.Lit{Val: value.Int(0)}},
		expr.Lit{Val: value.Str("B")},
	}
	switch rng.Intn(3) {
	case 0:
		r.Branches = []Branch{{Cond: guard, Products: []Template{prod}}}
	case 1:
		r.Branches = []Branch{{Cond: guard, Products: nil}, {Products: []Template{prod}}}
	default:
		r.Branches = []Branch{{Products: []Template{prod}}}
	}
	return r
}

func randMultisetForKernel(rng *rand.Rand) *multiset.Multiset {
	m := multiset.New()
	for i, n := 0, 2+rng.Intn(6); i < n; i++ {
		t := multiset.Tuple{value.Int(int64(rng.Intn(6)))}
		if rng.Intn(5) > 0 {
			t = append(t, value.Str([]string{"A", "B"}[rng.Intn(2)]))
		}
		if rng.Intn(2) == 0 {
			t = append(t, value.Int(int64(rng.Intn(2))))
		}
		m.AddN(t, 1+rng.Intn(2))
	}
	return m
}

// TestKernelMatchesInterpreter is the matcher differential: on random
// reactions and random multisets, the compiled kernel search must find
// exactly what the interpreted backtracking search finds — same enablement,
// same chosen elements, same bindings, same branch — and the kernel's
// compiled produce must agree with the tree-walking Template.instantiate.
func TestKernelMatchesInterpreter(t *testing.T) {
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		r := randReaction(rng)
		m := randMultisetForKernel(rng)

		want, wantErr := findMatchOracle(r, m)
		got, gotErr := FindMatch(r, m, nil)
		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("seed %d: %s\n oracle err=%v kernel err=%v", seed, r, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if (want == nil) != (got == nil) {
			t.Fatalf("seed %d: %s\n on %s\n oracle match=%v kernel match=%v", seed, r, m, want, got)
		}
		if want == nil {
			continue
		}
		if want.Branch != got.Branch || len(want.Chosen) != len(got.Chosen) {
			t.Fatalf("seed %d: branch/chosen mismatch: oracle (%d,%v) kernel (%d,%v)",
				seed, want.Branch, want.Chosen, got.Branch, got.Chosen)
		}
		for i := range want.Chosen {
			if !want.Chosen[i].Equal(got.Chosen[i]) {
				t.Fatalf("seed %d: chosen[%d]: oracle %s kernel %s", seed, i, want.Chosen[i], got.Chosen[i])
			}
		}
		if len(want.Env) != len(got.Env) {
			t.Fatalf("seed %d: env size: oracle %v kernel %v", seed, want.Env, got.Env)
		}
		for name, v := range want.Env {
			if gv, ok := got.Env[name]; !ok || gv != v {
				t.Fatalf("seed %d: env[%s]: oracle %s kernel %s", seed, name, v, gv)
			}
		}

		// Products: compiled produce vs interpreted produce on the same env.
		wantP, wErr := r.produce(want.Branch, want.Env)
		s, err := findFiring(r, m, nil)
		if err != nil || s == nil {
			t.Fatalf("seed %d: findFiring after FindMatch: (%v, %v)", seed, s, err)
		}
		gotP, gErr := r.kernel().produce(r.Name, s.branch, s.env)
		r.kernel().putSearcher(s)
		if (wErr == nil) != (gErr == nil) || (wErr != nil && wErr.Error() != gErr.Error()) {
			t.Fatalf("seed %d: produce err: oracle %v kernel %v", seed, wErr, gErr)
		}
		if wErr == nil {
			if len(wantP) != len(gotP) {
				t.Fatalf("seed %d: product count: oracle %v kernel %v", seed, wantP, gotP)
			}
			for i := range wantP {
				if !wantP[i].Equal(gotP[i]) {
					t.Fatalf("seed %d: product[%d]: oracle %s kernel %s", seed, i, wantP[i], gotP[i])
				}
			}
		}
	}
}

// TestKernelBacktrackClearsSlots forces a mid-search retreat: the first
// candidate for pattern 0 admits no partner for pattern 1, so the searcher
// must unbind pattern 0's slots and succeed with the second candidate.
func TestKernelBacktrackClearsSlots(t *testing.T) {
	r := &Reaction{
		Name: "pairup",
		Patterns: []Pattern{
			{FVar("x"), FLabel("A"), FVar("v")},
			{FVar("y"), FLabel("B"), FVar("v")}, // shared tag forces the retreat
		},
		Branches: []Branch{{Products: nil}},
	}
	m := multiset.New(
		multiset.IntElem(1, "A", 7), // no B partner with tag 7
		multiset.IntElem(2, "A", 9),
		multiset.IntElem(3, "B", 9),
	)
	match, err := FindMatch(r, m, nil)
	if err != nil || match == nil {
		t.Fatalf("match: (%v, %v)", match, err)
	}
	if got := match.Env["v"].AsInt(); got != 9 {
		t.Fatalf("tag = %d, want 9 (stale binding from backtracked candidate?)", got)
	}
	if match.Env["x"].AsInt() != 2 || match.Env["y"].AsInt() != 3 {
		t.Fatalf("bindings = %v", match.Env)
	}
}

// TestFindFiringNoMatchAllocationFree pins the pooled-searcher property: a
// failed probe on a stable multiset — the dominant operation near the Eq. 1
// fixpoint — allocates nothing.
func TestFindFiringNoMatchAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments sync.Pool with allocations")
	}
	r := &Reaction{
		Name:     "drain",
		Patterns: []Pattern{{FVar("x"), FLabel("A"), FVar("v")}},
		Branches: []Branch{{Cond: expr.MustParse("x < 0"), Products: nil}},
	}
	m := multiset.New(
		multiset.IntElem(1, "A", 0),
		multiset.IntElem(2, "A", 1),
		multiset.IntElem(3, "B", 0),
	)
	if s, err := findFiring(r, m, nil); err != nil || s != nil {
		t.Fatalf("warmup: (%v, %v)", s, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		s, err := findFiring(r, m, nil)
		if err != nil || s != nil {
			t.Fatalf("probe: (%v, %v)", s, err)
		}
	})
	if allocs != 0 {
		t.Errorf("failed probe allocates %v per run, want 0", allocs)
	}
}
