package gamma

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

// tournamentProgram is a K-stage pairwise min reduction over labeled
// elements — the "min-element-style" workload of the incremental-engine
// measurements. Stage i consumes two (x,'Li') elements and forwards the
// smaller as (x,'L<i+1>'): exactly the literal-label pattern shape
// Algorithm 1 emits, so every reaction subscribes to one label.
func tournamentProgram(stages int) *Program {
	rs := make([]*Reaction, stages)
	for i := 0; i < stages; i++ {
		in, out := fmt.Sprintf("L%d", i), fmt.Sprintf("L%d", i+1)
		rs[i] = &Reaction{
			Name:     fmt.Sprintf("R%d", i),
			Patterns: []Pattern{{FVar("x"), FLabel(in)}, {FVar("y"), FLabel(in)}},
			Branches: []Branch{
				{Cond: expr.MustParse("x <= y"),
					Products: []Template{{expr.MustParse("x"), expr.Lit{Val: value.Str(out)}}}},
				{Products: []Template{{expr.MustParse("y"), expr.Lit{Val: value.Str(out)}}}},
			},
		}
	}
	return MustProgram("tournament", rs...)
}

func tournamentInit(n int) *multiset.Multiset {
	m := multiset.New()
	for i := 0; i < n; i++ {
		m.Add(multiset.Pair(value.Int(int64((i*2654435761+17)%(4*n))), "L0"))
	}
	return m
}

func TestBuildSubscriptions(t *testing.T) {
	labeled := &Reaction{
		Name:     "labeled",
		Patterns: []Pattern{{FVar("x"), FLabel("A")}, {FVar("y"), FLabel("B")}, {FVar("z"), FLabel("A")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x")}}}},
	}
	generic := &Reaction{
		Name:     "generic",
		Patterns: []Pattern{{FVar("x"), FLabel("C")}, {FVar("y")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x")}}}},
	}
	sub := buildSubscriptions([]*Reaction{labeled, generic})
	if got := sub.byLabel["A"]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("byLabel[A] = %v, want [0] (deduped)", got)
	}
	if got := sub.byLabel["B"]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("byLabel[B] = %v, want [0]", got)
	}
	// generic has one pattern with no literal label: wildcard, and none of
	// its labels are indexed (any addition must wake it anyway).
	if len(sub.wildcard) != 1 || sub.wildcard[0] != 1 {
		t.Fatalf("wildcard = %v, want [1]", sub.wildcard)
	}
	if _, ok := sub.byLabel["C"]; ok {
		t.Fatal("wildcard reaction must not also subscribe by label")
	}
}

func TestSubscriptionsForEach(t *testing.T) {
	sub := &subscriptions{
		byLabel:  map[string][]int{"A": {0}, "B": {1, 2}},
		wildcard: []int{3},
	}
	wake := func(labels ...string) map[int]int {
		got := map[int]int{}
		sub.forEach(labels, func(i int) { got[i]++ })
		return got
	}
	if got := wake("A"); len(got) != 2 || got[0] != 1 || got[3] != 1 {
		t.Fatalf("forEach(A) woke %v, want {0,3}", got)
	}
	// NoLabel deltas wake only the wildcard bucket: an unlabeled element
	// cannot feed a literal-label pattern.
	if got := wake(multiset.NoLabel); len(got) != 1 || got[3] != 1 {
		t.Fatalf("forEach(NoLabel) woke %v, want {3}", got)
	}
	if got := wake("unknown"); len(got) != 1 || got[3] != 1 {
		t.Fatalf("forEach(unknown) woke %v, want {3}", got)
	}
	if got := wake("A", "B"); len(got) != 4 {
		t.Fatalf("forEach(A,B) woke %v, want {0,1,2,3}", got)
	}
}

// TestIncrementalMatchesFullScanSequential is the firing-sequence parity
// check: the dirty worklist skips only probes that would have failed, so the
// deterministic sequential run reaches the same multiset in the same number
// of steps as the seed full-rescan engine — with strictly fewer probes on a
// multi-reaction labeled program.
func TestIncrementalMatchesFullScanSequential(t *testing.T) {
	p := tournamentProgram(8)
	mInc := tournamentInit(256)
	mFull := mInc.Clone()

	inc, err := Run(p, mInc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(p, mFull, Options{FullScan: true})
	if err != nil {
		t.Fatal(err)
	}
	if !mInc.Equal(mFull) {
		t.Fatalf("stable states differ:\nincremental %s\nfullscan    %s", mInc, mFull)
	}
	if inc.Steps != full.Steps {
		t.Fatalf("steps differ: incremental %d, fullscan %d", inc.Steps, full.Steps)
	}
	for name, n := range full.Fired {
		if inc.Fired[name] != n {
			t.Fatalf("firing counts differ for %s: %d vs %d", name, inc.Fired[name], n)
		}
	}
	if inc.Probes >= full.Probes {
		t.Fatalf("incremental probes %d not below fullscan probes %d", inc.Probes, full.Probes)
	}
	// The acceptance bar of the incremental engine: ≥2× fewer probes on a
	// labeled multi-reaction workload.
	if 2*inc.Probes > full.Probes {
		t.Errorf("incremental probes %d vs fullscan %d: expected ≥2× reduction", inc.Probes, full.Probes)
	}
}

// TestSequentialMaxStepsDirect covers the MaxSteps fast path: when a match is
// found past the budget the runtime returns ErrMaxSteps directly, with Steps
// pinned at the budget, in both scheduling modes.
func TestSequentialMaxStepsDirect(t *testing.T) {
	for _, fullScan := range []bool{false, true} {
		p := tournamentProgram(8)
		m := tournamentInit(256)
		st, err := Run(p, m, Options{MaxSteps: 10, FullScan: fullScan})
		if err != ErrMaxSteps {
			t.Fatalf("fullScan=%v: err = %v, want ErrMaxSteps", fullScan, err)
		}
		if st.Steps != 10 {
			t.Fatalf("fullScan=%v: steps = %d, want exactly 10", fullScan, st.Steps)
		}
	}
	// A program that stabilizes under the budget must not trip the limit.
	p := tournamentProgram(3)
	m := tournamentInit(8)
	if _, err := Run(p, m, Options{MaxSteps: 1000}); err != nil {
		t.Fatalf("under-budget run failed: %v", err)
	}
}

// TestParallelWorklistMatchesFullScan runs the parallel runtime in both
// scheduling modes on the tournament workload: the unique stable state (the
// global min plus the unreduced leftovers per level) must come out either
// way, and MaxSteps must still be honored.
func TestParallelWorklistMatchesFullScan(t *testing.T) {
	p := tournamentProgram(6)
	init := tournamentInit(64)
	ref := init.Clone()
	if _, err := Run(p, ref, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, fullScan := range []bool{false, true} {
		m := init.Clone()
		st, err := Run(p, m, Options{Workers: 4, Seed: 7, FullScan: fullScan})
		if err != nil {
			t.Fatalf("fullScan=%v: %v", fullScan, err)
		}
		// The tournament's stable state is unique — the global min wins
		// every pairing it appears in — so any schedule must agree.
		if !m.Equal(ref) {
			t.Fatalf("fullScan=%v: stable state %s, sequential %s", fullScan, m, ref)
		}
		if st.Steps != 63 {
			t.Fatalf("fullScan=%v: steps = %d, want 63", fullScan, st.Steps)
		}
	}
}
