//go:build race

package gamma

// raceEnabled gates allocation-count assertions: the race detector makes
// sync.Pool and map operations allocate, so alloc-exactness is only
// meaningful in non-race builds.
const raceEnabled = true
