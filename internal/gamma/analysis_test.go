package gamma

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

func TestAnalyzeTerminationGuaranteed(t *testing.T) {
	// Eq. 2: consumes 2, produces 1.
	hint, why := AnalyzeTermination(MustProgram("min", minReaction()))
	if hint != TerminationGuaranteed {
		t.Errorf("min: %v (%s)", hint, why)
	}
	// Steer with by-0 else: both branches produce fewer than 2.
	hint, _ = AnalyzeTermination(MustProgram("steer", steerReaction()))
	if hint != TerminationGuaranteed {
		t.Errorf("steer: %v", hint)
	}
}

func TestAnalyzeTerminationNever(t *testing.T) {
	// x -> x+1 on the same label, unconditional: diverges once enabled.
	grow := &Reaction{
		Name:     "grow",
		Patterns: []Pattern{{FVar("x"), FLabel("a")}},
		Branches: []Branch{{Products: []Template{{
			expr.MustParse("x + 1"), expr.Lit{Val: value.Str("a")},
		}}}},
	}
	hint, why := AnalyzeTermination(MustProgram("grow", grow))
	if hint != TerminationNever {
		t.Errorf("grow: %v (%s)", hint, why)
	}
	if !strings.Contains(why, "grow") {
		t.Errorf("explanation should name the reaction: %s", why)
	}
	// Identity over generic labels: fires forever.
	ident := &Reaction{
		Name:     "id",
		Patterns: []Pattern{{FVar("x"), FVar("l"), FVar("v")}},
		Branches: []Branch{{Products: []Template{{
			expr.MustParse("x"), expr.MustParse("l"), expr.MustParse("v"),
		}}}},
	}
	hint, _ = AnalyzeTermination(MustProgram("id", ident))
	if hint != TerminationNever {
		t.Errorf("identity: %v", hint)
	}
}

func TestAnalyzeTerminationUnknown(t *testing.T) {
	// An inctag-style reaction (conditional, non-shrinking): data-dependent.
	hint, why := AnalyzeTermination(MustProgram("inc", inctagReaction()))
	if hint != TerminationUnknown {
		t.Errorf("inctag: %v (%s)", hint, why)
	}
	if !strings.Contains(why, "R11") {
		t.Errorf("explanation should list the non-shrinking reaction: %s", why)
	}
	// Ping-pong across two reactions: per-reaction analysis cannot see the
	// cycle, so unknown (not never).
	a := &Reaction{
		Name:     "A",
		Patterns: []Pattern{{FVar("x"), FLabel("p")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x"), expr.Lit{Val: value.Str("q")}}}}},
	}
	bR := &Reaction{
		Name:     "B",
		Patterns: []Pattern{{FVar("x"), FLabel("q")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x"), expr.Lit{Val: value.Str("p")}}}}},
	}
	hint, _ = AnalyzeTermination(MustProgram("pp", a, bR))
	if hint != TerminationUnknown {
		t.Errorf("ping-pong: %v", hint)
	}
}

func TestDeadReactions(t *testing.T) {
	mk := func(name, in, out string) *Reaction {
		return &Reaction{
			Name:     name,
			Patterns: []Pattern{{FVar("x"), FLabel(in)}},
			Branches: []Branch{{Products: []Template{{expr.MustParse("x"), expr.Lit{Val: value.Str(out)}}}}},
		}
	}
	// Chain a->b->c live; orphan consumes a label nothing produces.
	p := MustProgram("p",
		mk("A", "a", "b"),
		mk("B", "b", "c"),
		mk("Orphan", "zzz", "w"),
		mk("Downstream", "w", "q"), // only fed by the dead Orphan
	)
	init := multiset.New(multiset.Pair(value.Int(1), "a"))
	dead := DeadReactions(p, init)
	if len(dead) != 2 || dead[0] != "Downstream" || dead[1] != "Orphan" {
		t.Errorf("dead = %v, want [Downstream Orphan]", dead)
	}
	// Empty multiset: everything is dead.
	if dead := DeadReactions(p, multiset.New()); len(dead) != 4 {
		t.Errorf("empty init dead = %v", dead)
	}
	// Nil init behaves like empty.
	if dead := DeadReactions(p, nil); len(dead) != 4 {
		t.Errorf("nil init dead = %v", dead)
	}
	// A generic (variable-label) pattern is live whenever elements exist.
	gen := &Reaction{
		Name:     "G",
		Patterns: []Pattern{{FVar("v"), FVar("l")}},
		Branches: []Branch{{Products: nil}},
	}
	if dead := DeadReactions(MustProgram("g", gen), init); len(dead) != 0 {
		t.Errorf("generic pattern dead = %v", dead)
	}
	// A variable-label product makes downstream consumers live.
	relabel := &Reaction{
		Name:     "R",
		Patterns: []Pattern{{FVar("v"), FVar("l")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("v"), expr.MustParse("l")}}}},
	}
	cons := mk("C", "anything", "done")
	if dead := DeadReactions(MustProgram("g", relabel, cons), init); len(dead) != 0 {
		t.Errorf("wildcard producer dead = %v", dead)
	}
	// Unlabelled initial elements enable generic patterns too.
	bare := multiset.New(multiset.New1(value.Int(3)), multiset.New1(value.Int(5)))
	if dead := DeadReactions(MustProgram("m", minReaction()), bare); len(dead) != 0 {
		t.Errorf("min over scalars dead = %v", dead)
	}
	// ...but unlabelled elements must NOT satisfy literal-label patterns: a
	// typo'd label alongside a scalar multiset stays dead (regression for
	// the conflated wildcard flag).
	typo := mk("Typo", "nowhere", "gone")
	if dead := DeadReactions(MustProgram("t", minReaction(), typo), bare); len(dead) != 1 || dead[0] != "Typo" {
		t.Errorf("typo lint dead = %v, want [Typo]", dead)
	}
}

func TestDeadReactionsPaperPrograms(t *testing.T) {
	// Every reaction of the converted Fig. 2 program is live from its own
	// initial multiset.
	r11 := inctagReaction()
	st := steerReaction()
	p := MustProgram("frag", r11, st)
	init := multiset.New(
		multiset.IntElem(7, "A1", 0),
		multiset.IntElem(42, "B13", 3),
		multiset.IntElem(1, "B15", 3),
	)
	if dead := DeadReactions(p, init); len(dead) != 0 {
		t.Errorf("dead = %v, want none", dead)
	}
	// Remove the control element's label from the universe: the steer dies.
	init2 := multiset.New(multiset.IntElem(7, "A1", 0))
	dead := DeadReactions(p, init2)
	if len(dead) != 1 || dead[0] != "R16" {
		t.Errorf("dead = %v, want [R16]", dead)
	}
}

func TestTerminationHintString(t *testing.T) {
	if TerminationGuaranteed.String() == "" || TerminationNever.String() == "" ||
		TerminationUnknown.String() == "" || TerminationHint(99).String() != "unknown" {
		t.Error("hint rendering wrong")
	}
}

func TestAnalyzeMatchesRuntime(t *testing.T) {
	// Guaranteed programs must terminate without MaxSteps; Never programs
	// must hit MaxSteps.
	m := intsMultiset(5, 3, 9, 1)
	if _, err := Run(MustProgram("min", minReaction()), m, Options{}); err != nil {
		t.Errorf("guaranteed program errored: %v", err)
	}
	grow := &Reaction{
		Name:     "grow",
		Patterns: []Pattern{{FVar("x"), FLabel("a")}},
		Branches: []Branch{{Products: []Template{{
			expr.MustParse("x + 1"), expr.Lit{Val: value.Str("a")},
		}}}},
	}
	p := MustProgram("grow", grow)
	if hint, _ := AnalyzeTermination(p); hint != TerminationNever {
		t.Fatal("precondition")
	}
	m2 := multiset.New(multiset.Pair(value.Int(0), "a"))
	_, err := Run(p, m2, Options{MaxSteps: 25})
	if err == nil {
		t.Error("diverging program should hit MaxSteps")
	}
}
