package core

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/gamma"
	"repro/internal/multiset"
	"repro/internal/value"
)

// ProgramToGraph converts a whole Gamma program back into one dynamic
// dataflow graph. It is the program-level inverse of Algorithm 1: each
// reaction is classified into the vertex it behaves as (ClassifyReaction —
// the paper's future-work analysis), the initial multiset's elements become
// root vertices, and element labels become the edges wiring producers to
// consumers. Labels produced but never consumed become terminal (output)
// edges.
//
// Requirements, each reported as an error when violated: every reaction must
// be vertex-shaped; every label must have exactly one producer (a reaction
// product or an initial element, not both) and at most one consumer port; and
// initial elements must carry tag 0 with one element per label — exactly the
// invariants Algorithm 1's output satisfies, so ToGamma followed by
// ProgramToGraph is a semantic round trip.
func ProgramToGraph(name string, p *gamma.Program, init *multiset.Multiset) (*dataflow.Graph, error) {
	specs := make([]*NodeSpec, 0, len(p.Reactions))
	for _, r := range p.Reactions {
		spec, err := ClassifyReaction(r)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}

	g := dataflow.NewGraph(name)
	producers := make(map[string]outPort)

	// Root vertices from the initial multiset.
	if init != nil {
		type rootElem struct {
			label string
			val   value.Value
		}
		var roots []rootElem
		var badErr error
		init.ForEach(func(t multiset.Tuple, n int) bool {
			label, ok := t.Label()
			if !ok {
				badErr = fmt.Errorf("core: initial element %s has no label field", t)
				return false
			}
			if tag, ok := t.Tag(); !ok || tag != 0 {
				badErr = fmt.Errorf("core: initial element %s must carry tag 0", t)
				return false
			}
			if n != 1 {
				badErr = fmt.Errorf("core: initial label %s has multiplicity %d; roots fire once", label, n)
				return false
			}
			roots = append(roots, rootElem{label: label, val: t.Value()})
			return true
		})
		if badErr != nil {
			return nil, badErr
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i].label < roots[j].label })
		for _, re := range roots {
			if _, dup := producers[re.label]; dup {
				return nil, fmt.Errorf("core: two initial elements carry label %s", re.label)
			}
			id := g.AddConst("root_"+re.label, re.val)
			producers[re.label] = outPort{node: id, port: 0}
		}
	}

	// Vertices from the classified reactions, registering their products.
	nodes := make([]dataflow.NodeID, len(specs))
	for i, spec := range specs {
		var id dataflow.NodeID
		switch spec.Kind {
		case dataflow.KindArith:
			if spec.Imm.IsValid() {
				if spec.ImmLeft {
					id = g.AddArithImmLeft(spec.Name, spec.Op, spec.Imm)
				} else {
					id = g.AddArithImm(spec.Name, spec.Op, spec.Imm)
				}
			} else {
				id = g.AddArith(spec.Name, spec.Op)
			}
		case dataflow.KindCompare:
			if spec.Imm.IsValid() {
				if spec.ImmLeft {
					id = g.AddCompareImmLeft(spec.Name, spec.Op, spec.Imm)
				} else {
					id = g.AddCompareImm(spec.Name, spec.Op, spec.Imm)
				}
			} else {
				id = g.AddCompare(spec.Name, spec.Op)
			}
		case dataflow.KindSteer:
			id = g.AddSteer(spec.Name)
		case dataflow.KindIncTag:
			id = g.AddIncTag(spec.Name)
		case dataflow.KindSetTag:
			id = g.AddSetTag(spec.Name)
		case dataflow.KindCopy:
			id = g.AddCopy(spec.Name)
		case dataflow.KindUnaryOp:
			id = g.AddUnary(spec.Name, spec.Op)
		default:
			return nil, fmt.Errorf("core: reaction %s classified to unsupported kind %s", spec.Name, spec.Kind)
		}
		nodes[i] = id
		for port, labels := range spec.OutLabels {
			for _, label := range labels {
				if _, dup := producers[label]; dup {
					return nil, fmt.Errorf("core: label %s has two producers", label)
				}
				producers[label] = outPort{node: id, port: port}
			}
		}
	}

	// Wire consumers; whatever stays unconsumed becomes a program output.
	consumed := make(map[string]bool)
	for i, spec := range specs {
		for port, labels := range spec.InLabels {
			for _, label := range labels {
				src, ok := producers[label]
				if !ok {
					return nil, fmt.Errorf("core: reaction %s consumes label %s, which nothing produces", spec.Name, label)
				}
				if consumed[label] {
					return nil, fmt.Errorf("core: label %s is consumed twice", label)
				}
				consumed[label] = true
				if _, err := g.Connect(src.node, src.port, nodes[i], port, label); err != nil {
					return nil, fmt.Errorf("core: wiring %s: %w", label, err)
				}
			}
		}
	}
	var outputs []string
	for label := range producers {
		if !consumed[label] {
			outputs = append(outputs, label)
		}
	}
	sort.Strings(outputs)
	for _, label := range outputs {
		src := producers[label]
		if _, err := g.Connect(src.node, src.port, dataflow.NoNode, 0, label); err != nil {
			return nil, fmt.Errorf("core: output %s: %w", label, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: reconstructed graph is malformed: %w", err)
	}
	return g, nil
}
