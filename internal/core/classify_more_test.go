package core

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/value"
)

func TestClassifyErrorMessage(t *testing.T) {
	r := mustReaction(t, `R = replace [x], [y] by [x] if x < y`)
	_, err := ClassifyReaction(r)
	if err == nil {
		t.Fatal("pair reaction should not classify")
	}
	ce, ok := err.(*ClassifyError)
	if !ok {
		t.Fatalf("want *ClassifyError, got %T", err)
	}
	if !strings.Contains(ce.Error(), "R") || !strings.Contains(ce.Error(), "arity") {
		t.Errorf("message = %q", ce.Error())
	}
}

func TestClassifySteerVariants(t *testing.T) {
	// Explicit ctl == 0 second branch instead of else.
	st := mustReaction(t, `S = replace [d, 'D', v], [c, 'C', v]
		by [d, 'T', v] if c == 1
		by [d, 'F', v] if c == 0`)
	spec, err := ClassifyReaction(st)
	if err != nil || spec.Kind != dataflow.KindSteer {
		t.Errorf("== 0 complement: %v %v", spec, err)
	}
	// Wrong complement (c == 2): not a steer.
	bad := mustReaction(t, `S = replace [d, 'D', v], [c, 'C', v]
		by [d, 'T', v] if c == 1
		by [d, 'F', v] if c == 2`)
	if _, err := ClassifyReaction(bad); err == nil {
		t.Error("c == 2 complement should not classify")
	}
	// Complement on the wrong variable.
	bad2 := mustReaction(t, `S = replace [d, 'D', v], [c, 'C', v]
		by [d, 'T', v] if c == 1
		by [d, 'F', v] if d == 0`)
	if _, err := ClassifyReaction(bad2); err == nil {
		t.Error("complement on data variable should not classify")
	}
	// Steer discarding on both ports ("by 0" twice) is degenerate but legal
	// for the runtime; it classifies as a steer with empty out labels.
	drop := mustReaction(t, `S = replace [d, 'D', v], [c, 'C', v]
		by 0 if c == 1
		by 0 else`)
	spec, err = ClassifyReaction(drop)
	if err != nil || spec.Kind != dataflow.KindSteer {
		t.Errorf("double-drop steer: %v %v", spec, err)
	}
	if len(spec.OutLabels[0]) != 0 || len(spec.OutLabels[1]) != 0 {
		t.Errorf("out labels = %v", spec.OutLabels)
	}
}

func TestClassifyCompareVariants(t *testing.T) {
	// Structural negation as the second branch.
	neg := mustReaction(t, `C = replace [x, 'I', v]
		by [1, 'O', v] if x >= 10
		by [0, 'O', v] if !(x >= 10)`)
	spec, err := ClassifyReaction(neg)
	if err != nil || spec.Kind != dataflow.KindCompare || spec.Op != ">=" {
		t.Errorf("negated complement: %+v %v", spec, err)
	}
	// Mismatched negation: rejected.
	bad := mustReaction(t, `C = replace [x, 'I', v]
		by [1, 'O', v] if x >= 10
		by [0, 'O', v] if !(x > 10)`)
	if _, err := ClassifyReaction(bad); err == nil {
		t.Error("mismatched negation should not classify")
	}
	// Branches producing different labels: rejected.
	bad2 := mustReaction(t, `C = replace [x, 'I', v]
		by [1, 'O', v] if x >= 10
		by [0, 'P', v] else`)
	if _, err := ClassifyReaction(bad2); err == nil {
		t.Error("label mismatch across branches should not classify")
	}
	// Two-variable comparison.
	two := mustReaction(t, `C = replace [a, 'L', v], [b, 'R', v]
		by [1, 'O', v] if a != b
		by [0, 'O', v] else`)
	spec, err = ClassifyReaction(two)
	if err != nil || spec.Kind != dataflow.KindCompare || spec.Op != "!=" || spec.Imm.IsValid() {
		t.Errorf("two-var compare: %+v %v", spec, err)
	}
}

func TestReactionToGraphOrCondition(t *testing.T) {
	// Disjunctive condition lowers to a+b-a*b over 1/0 controls.
	r := mustReaction(t, `R = replace [x, 'X', v]
		by [x, 'OK', v] if (x < 0) or (x > 10)
		by 0 else`)
	g, err := ReactionToGraph(r)
	if err != nil {
		t.Fatal(err)
	}
	check := func(x int64, wantOK bool) {
		if err := g.SetConst(g.NodeByName("x").ID, value.Int(x)); err != nil {
			t.Fatal(err)
		}
		res, err := dataflow.Run(g, dataflow.Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, ok := res.Output("OK")
		if ok != wantOK {
			t.Errorf("x=%d: OK fired=%v, want %v", x, ok, wantOK)
		}
	}
	check(-3, true)
	check(5, false)
	check(20, true)
}

func TestReactionToGraphNotCondition(t *testing.T) {
	// Negated condition lowers to 1-x.
	r := mustReaction(t, `R = replace [x, 'X', v]
		by [x, 'OK', v] if !(x == 7)
		by 0 else`)
	g, err := ReactionToGraph(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		x    int64
		want bool
	}{{7, false}, {8, true}} {
		if err := g.SetConst(g.NodeByName("x").ID, value.Int(c.x)); err != nil {
			t.Fatal(err)
		}
		res, err := dataflow.Run(g, dataflow.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := res.Output("OK"); ok != c.want {
			t.Errorf("x=%d: fired=%v, want %v", c.x, ok, c.want)
		}
	}
}

func TestReactionToGraphUnaryInProduct(t *testing.T) {
	r := mustReaction(t, `R = replace [x, 'X', v] by [-x, 'N', v], [!(x > 0), 'B', v]`)
	g, err := ReactionToGraph(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetConst(g.NodeByName("x").ID, value.Int(4)); err != nil {
		t.Fatal(err)
	}
	res, err := dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Output("N"); v != value.Int(-4) {
		t.Errorf("N = %v", v)
	}
	// !(4 > 0): the comparison emits 1, the lowered not emits 1-1 = 0.
	if v, _ := res.Output("B"); v != value.Int(0) {
		t.Errorf("B = %v", v)
	}
}
