// Package core implements the paper's primary contribution: the equivalence
// between the dynamic dataflow model and Gamma, as two executable
// translations plus the supporting transformations.
//
//   - Algorithm 1 (§III-B): ToGamma converts a dynamic dataflow graph into a
//     Gamma program — vertices become reactions, edges become multiset
//     elements [value, label, tag], and the initial multiset comes from the
//     root vertices.
//   - Algorithm 2 (§III-B): ReactionToGraph converts one reaction into a
//     dataflow subgraph, and MapMultiset performs the step-2 mapping of the
//     multiset onto replicated instances of that subgraph (Fig. 4).
//   - ProgramToGraph composes the reverse direction for whole programs using
//     the reaction classifier (the paper's future work: recognizing steer and
//     inctag vertices from reaction behaviour).
//   - Reduce implements the §III-A3 reductions: fusing chains of reactions
//     into coarser-grained ones (Rd1), trading match parallelism for reaction
//     count.
package core

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/multiset"
	"repro/internal/value"
)

// TagVar is the variable name used for the iteration-tag field in generated
// reactions, the paper's v.
const TagVar = "v"

// ToGamma is Algorithm 1: it converts a dynamic dataflow graph into an
// equivalent Gamma program and the initial multiset induced by the graph's
// root (const) vertices. Every element is the triplet [value, label, tag] the
// algorithm prescribes; the paper's Example-1 pairs are the degenerate case
// where tags are never incremented.
//
// The translation, per vertex kind (Algorithm 1's case analysis):
//
//   - root vertices contribute [value, outLabel, 0] to the initial multiset
//     (line 9);
//   - steer vertices become two-branch reactions keyed on the control operand
//     (lines 13-19);
//   - inctag vertices become reactions producing tag+1 (lines 21-22);
//   - comparison vertices produce 1/0 control elements on all out edges
//     (lines 23-28);
//   - arithmetic vertices produce their operation's value on all out edges
//     (lines 29-33).
//
// A vertex input port fed by several edges (a merge point, like R11's A1/A11
// in Fig. 2) binds its label field to a fresh variable constrained by a
// label-disjunction condition, exactly the (x=='A1') or (x=='A11') device of
// the paper's listings.
func ToGamma(g *dataflow.Graph) (*gamma.Program, *multiset.Multiset, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	init := multiset.New()
	var reactions []*gamma.Reaction
	for _, n := range g.Nodes {
		if n.Kind == dataflow.KindConst {
			for _, e := range n.Out[0] {
				init.Add(multiset.Tuple{n.Init, value.Str(g.Edges[e].Label), value.Int(0)})
			}
			continue
		}
		r, err := vertexToReaction(g, n)
		if err != nil {
			return nil, nil, err
		}
		reactions = append(reactions, r)
	}
	prog, err := gamma.NewProgram(g.Name, reactions...)
	if err != nil {
		return nil, nil, fmt.Errorf("core: algorithm 1 emitted an invalid reaction: %w", err)
	}
	return prog, init, nil
}

// inputSpec describes one input port for conversion: the value variable name
// and either a fixed label or a label variable with its accepted set.
type inputSpec struct {
	valueVar string
	labels   []string // accepted edge labels, len>=1
	labelVar string   // non-empty when len(labels) > 1 (merge port)
}

// vertexToReaction emits the reaction for one non-const vertex.
func vertexToReaction(g *dataflow.Graph, n *dataflow.Node) (*gamma.Reaction, error) {
	specs := make([]inputSpec, len(n.In))
	var patterns []gamma.Pattern
	var mergeConds []expr.Expr
	for port, ins := range n.In {
		spec := inputSpec{valueVar: fmt.Sprintf("id%d", port+1)}
		for _, e := range ins {
			spec.labels = append(spec.labels, g.Edges[e].Label)
		}
		sort.Strings(spec.labels)
		var labelField gamma.Field
		if len(spec.labels) > 1 {
			spec.labelVar = fmt.Sprintf("x%d", port+1)
			labelField = gamma.FVar(spec.labelVar)
			var disj expr.Expr
			for _, l := range spec.labels {
				eq := expr.Binary{Op: "==", L: expr.Var{Name: spec.labelVar}, R: expr.Lit{Val: value.Str(l)}}
				if disj == nil {
					disj = eq
				} else {
					disj = expr.Binary{Op: "or", L: disj, R: eq}
				}
			}
			mergeConds = append(mergeConds, disj)
		} else {
			labelField = gamma.FLabel(spec.labels[0])
		}
		patterns = append(patterns, gamma.Pattern{
			gamma.FVar(spec.valueVar), labelField, gamma.FVar(TagVar),
		})
		specs[port] = spec
	}

	// conj folds the merge conditions with an extra conjunct.
	conj := func(extra expr.Expr) expr.Expr {
		cond := extra
		for _, mc := range mergeConds {
			if cond == nil {
				cond = mc
			} else {
				cond = expr.Binary{Op: "and", L: mc, R: cond}
			}
		}
		return cond
	}
	// products builds one template per out edge of port, all carrying val
	// with the tag expression tagE.
	products := func(port int, val, tagE expr.Expr) []gamma.Template {
		var out []gamma.Template
		for _, e := range n.Out[port] {
			out = append(out, gamma.Template{val, expr.Lit{Val: value.Str(g.Edges[e].Label)}, tagE})
		}
		return out
	}
	tagSame := expr.Var{Name: TagVar}
	r := &gamma.Reaction{Name: n.Name, Patterns: patterns}

	switch n.Kind {
	case dataflow.KindArith, dataflow.KindCompare:
		left, right := expr.Expr(expr.Var{Name: specs[0].valueVar}), expr.Expr(nil)
		if n.Imm.IsValid() {
			right = expr.Lit{Val: n.Imm}
			if n.ImmLeft {
				left, right = right, expr.Expr(expr.Var{Name: specs[0].valueVar})
			}
		} else {
			right = expr.Var{Name: specs[1].valueVar}
		}
		opExpr := expr.Binary{Op: n.Op, L: left, R: right}
		if n.Kind == dataflow.KindArith {
			r.Branches = []gamma.Branch{{Cond: conj(nil), Products: products(0, opExpr, tagSame)}}
			break
		}
		// Comparison: 1 on the true branch, 0 otherwise (Algorithm 1 lines
		// 25-27). With merge conditions present both branches must test them
		// explicitly; otherwise use the paper's if/else shape.
		one := expr.Lit{Val: value.Int(1)}
		zero := expr.Lit{Val: value.Int(0)}
		trueBr := gamma.Branch{Cond: conj(opExpr), Products: products(0, one, tagSame)}
		var falseBr gamma.Branch
		if len(mergeConds) > 0 {
			falseBr = gamma.Branch{Cond: conj(expr.Unary{Op: "!", X: opExpr}), Products: products(0, zero, tagSame)}
		} else {
			falseBr = gamma.Branch{Products: products(0, zero, tagSame)}
		}
		r.Branches = []gamma.Branch{trueBr, falseBr}
	case dataflow.KindSteer:
		data := expr.Var{Name: specs[0].valueVar}
		ctl := expr.Binary{Op: "==", L: expr.Var{Name: specs[1].valueVar}, R: expr.Lit{Val: value.Int(1)}}
		trueBr := gamma.Branch{Cond: conj(ctl), Products: products(dataflow.PortTrue, data, tagSame)}
		var falseBr gamma.Branch
		if len(mergeConds) > 0 {
			notCtl := expr.Binary{Op: "==", L: expr.Var{Name: specs[1].valueVar}, R: expr.Lit{Val: value.Int(0)}}
			falseBr = gamma.Branch{Cond: conj(notCtl), Products: products(dataflow.PortFalse, data, tagSame)}
		} else {
			falseBr = gamma.Branch{Products: products(dataflow.PortFalse, data, tagSame)}
		}
		r.Branches = []gamma.Branch{trueBr, falseBr}
	case dataflow.KindIncTag:
		val := expr.Var{Name: specs[0].valueVar}
		tagNext := expr.Binary{Op: "+", L: expr.Var{Name: TagVar}, R: expr.Lit{Val: value.Int(1)}}
		r.Branches = []gamma.Branch{{Cond: conj(nil), Products: products(0, val, tagNext)}}
	case dataflow.KindSetTag:
		val := expr.Var{Name: specs[0].valueVar}
		r.Branches = []gamma.Branch{{Cond: conj(nil), Products: products(0, val, expr.Lit{Val: value.Int(0)})}}
	case dataflow.KindCopy:
		val := expr.Var{Name: specs[0].valueVar}
		r.Branches = []gamma.Branch{{Cond: conj(nil), Products: products(0, val, tagSame)}}
	case dataflow.KindUnaryOp:
		opExpr := expr.Unary{Op: n.Op, X: expr.Var{Name: specs[0].valueVar}}
		r.Branches = []gamma.Branch{{Cond: conj(nil), Products: products(0, opExpr, tagSame)}}
	default:
		return nil, fmt.Errorf("core: cannot convert %s vertex %s", n.Kind, n.Name)
	}
	return r, nil
}

// OutputsFromMultiset extracts the program outputs from a stable multiset:
// for each requested label, the values of the elements carrying it, as
// dataflow-style tagged values sorted by tag. This is how the equivalence
// harness compares a Gamma fixpoint with a dataflow run's terminal tokens.
func OutputsFromMultiset(m *multiset.Multiset, labels []string) map[string][]dataflow.TaggedValue {
	out := make(map[string][]dataflow.TaggedValue)
	for _, label := range labels {
		for _, c := range m.ByLabel(label) {
			tag, _ := c.Tuple.Tag()
			for i := 0; i < c.N; i++ {
				out[label] = append(out[label], dataflow.TaggedValue{Tag: tag, Val: c.Tuple.Value()})
			}
		}
		sort.SliceStable(out[label], func(i, j int) bool { return out[label][i].Tag < out[label][j].Tag })
	}
	return out
}
