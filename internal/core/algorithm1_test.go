package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

// runBoth executes a graph natively and through Algorithm 1, returning both
// output maps for comparison.
func runBoth(t *testing.T, g *dataflow.Graph, maxSteps int64) (map[string][]dataflow.TaggedValue, map[string][]dataflow.TaggedValue) {
	t.Helper()
	res, err := dataflow.Run(g, dataflow.Options{MaxFirings: maxSteps})
	if err != nil {
		t.Fatalf("dataflow run: %v", err)
	}
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatalf("ToGamma: %v", err)
	}
	if _, err := gamma.Run(prog, init, gamma.Options{MaxSteps: maxSteps * 4}); err != nil {
		t.Fatalf("gamma run: %v\nprogram:\n%s", err, gammalang.Format(prog))
	}
	return res.Outputs, OutputsFromMultiset(init, g.OutputLabels())
}

func TestAlgorithm1Fig1(t *testing.T) {
	g := paper.Fig1Graph()
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	// Three reactions (R1, R2, R3) as in the paper's Example 1.
	if len(prog.Reactions) != 3 {
		t.Errorf("reactions = %d, want 3", len(prog.Reactions))
	}
	// Initial multiset mirrors {[1,A1,0],[5,B1,0],[3,C1,0],[2,D1,0]}.
	if init.Len() != 4 || !init.Contains(multiset.IntElem(1, "A1", 0)) ||
		!init.Contains(multiset.IntElem(5, "B1", 0)) ||
		!init.Contains(multiset.IntElem(3, "C1", 0)) ||
		!init.Contains(multiset.IntElem(2, "D1", 0)) {
		t.Errorf("initial multiset = %s", init)
	}
	// The emitted source contains the paper's R1 reaction shape.
	text := gammalang.Format(prog)
	for _, want := range []string{
		"R1 = replace [id1, 'A1', v], [id2, 'B1', v]",
		"by [id1 + id2, 'B2', v]",
		"R3 = replace [id1, 'B2', v], [id2, 'C2', v]",
		"by [id1 - id2, 'm', v]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("emitted program missing %q:\n%s", want, text)
		}
	}
	// And it runs to the paper's result.
	if _, err := gamma.Run(prog, init, gamma.Options{}); err != nil {
		t.Fatal(err)
	}
	if init.Len() != 1 || !init.Contains(multiset.IntElem(0, "m", 0)) {
		t.Errorf("stable multiset = %s, want {[0, 'm', 0]}", init)
	}
}

func TestAlgorithm1Fig1Equivalence(t *testing.T) {
	for _, in := range [][4]int64{{1, 5, 3, 2}, {0, 0, 0, 0}, {-7, 3, 2, 9}, {50, -20, 6, 6}} {
		g := paper.Fig1GraphWith(in[0], in[1], in[2], in[3])
		df, gm := runBoth(t, g, 1000)
		if !reflect.DeepEqual(df, gm) {
			t.Errorf("inputs %v: dataflow %v vs gamma %v", in, df, gm)
		}
	}
}

func TestAlgorithm1Fig2Observable(t *testing.T) {
	cases := []struct{ x, y, z int64 }{
		{10, 4, 3}, {0, 1, 6}, {5, 7, 0}, {5, 7, -2},
	}
	for _, c := range cases {
		g := paper.Fig2GraphObservable(c.x, c.y, c.z)
		df, gm := runBoth(t, g, 100000)
		if !reflect.DeepEqual(df, gm) {
			t.Errorf("loop(%d,%d,%d): dataflow %v vs gamma %v", c.x, c.y, c.z, df, gm)
		}
		want := paper.Example2Result(c.x, c.y, c.z)
		if len(df["xout"]) != 1 || df["xout"][0].Val != value.Int(want) {
			t.Errorf("loop(%d,%d,%d) xout = %v, want %d", c.x, c.y, c.z, df["xout"], want)
		}
	}
}

func TestAlgorithm1Fig2Faithful(t *testing.T) {
	// The faithful Fig. 2 graph discards everything; its conversion must
	// produce a program whose stable multiset is empty, like the paper's
	// Example-2 listing.
	g := paper.Fig2Graph()
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Reactions) != 9 {
		t.Errorf("reactions = %d, want 9 (R11–R19)", len(prog.Reactions))
	}
	// The merge ports produce the paper's label-disjunction conditions.
	text := gammalang.Format(prog)
	if !strings.Contains(text, "x1 == 'A1'") || !strings.Contains(text, "x1 == 'A11'") {
		t.Errorf("expected label-disjunction conditions in:\n%s", text)
	}
	if _, err := gamma.Run(prog, init, gamma.Options{MaxSteps: 100000}); err != nil {
		t.Fatal(err)
	}
	if init.Len() != 0 {
		t.Errorf("stable multiset = %s, want empty", init)
	}
}

func TestAlgorithm1Fig2Parallel(t *testing.T) {
	g := paper.Fig2GraphObservable(10, 4, 8)
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gamma.Run(prog, init, gamma.Options{Workers: 4, Seed: 3, MaxSteps: 1000000}); err != nil {
		t.Fatal(err)
	}
	out := OutputsFromMultiset(init, []string{"xout"})
	if len(out["xout"]) != 1 || out["xout"][0].Val != value.Int(42) {
		t.Errorf("parallel xout = %v, want 42", out["xout"])
	}
}

func TestAlgorithm1EmittedSourceParses(t *testing.T) {
	// The emitted Gamma source for Fig. 2 must parse under the Fig. 3
	// grammar and behave identically.
	g := paper.Fig2GraphObservable(3, 5, 4)
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	text := gammalang.Format(prog)
	prog2, err := gammalang.ParseProgram("reparsed", text)
	if err != nil {
		t.Fatalf("emitted source does not parse: %v\n%s", err, text)
	}
	m := init.Clone()
	if _, err := gamma.Run(prog2, m, gamma.Options{MaxSteps: 100000}); err != nil {
		t.Fatal(err)
	}
	out := OutputsFromMultiset(m, []string{"xout"})
	if len(out["xout"]) != 1 || out["xout"][0].Val != value.Int(23) {
		t.Errorf("xout = %v, want 23", out["xout"])
	}
}

func TestAlgorithm1UnaryAndCopy(t *testing.T) {
	g := dataflow.NewGraph("uc")
	c := g.AddConst("c", value.Int(5))
	cp := g.AddCopy("cp")
	neg := g.AddUnary("neg", "-")
	must := func(_ dataflow.EdgeID, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Connect(c, 0, cp, 0, "in"))
	must(g.Connect(cp, 0, neg, 0, "a"))
	must(g.ConnectOut(cp, 0, "b"))
	must(g.ConnectOut(neg, 0, "negout"))
	df, gm := runBoth(t, g, 100)
	if !reflect.DeepEqual(df, gm) {
		t.Errorf("dataflow %v vs gamma %v", df, gm)
	}
	if df["negout"][0].Val != value.Int(-5) {
		t.Errorf("negout = %v", df["negout"])
	}
}

func TestAlgorithm1InvalidGraph(t *testing.T) {
	g := dataflow.NewGraph("bad")
	g.AddArith("a", "+")
	if _, _, err := ToGamma(g); err == nil {
		t.Error("invalid graph should not convert")
	}
}

func TestOutputsFromMultisetOrdering(t *testing.T) {
	m := multiset.New(
		multiset.IntElem(30, "o", 3),
		multiset.IntElem(10, "o", 1),
		multiset.IntElem(20, "o", 2),
	)
	m.Add(multiset.IntElem(10, "o", 1)) // multiplicity 2
	out := OutputsFromMultiset(m, []string{"o", "missing"})
	if len(out["o"]) != 4 {
		t.Fatalf("out = %v", out)
	}
	for i := 1; i < len(out["o"]); i++ {
		if out["o"][i-1].Tag > out["o"][i].Tag {
			t.Errorf("not sorted by tag: %v", out["o"])
		}
	}
	if len(out["missing"]) != 0 {
		t.Errorf("missing label should be empty: %v", out["missing"])
	}
}
