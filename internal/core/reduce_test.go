package core

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

// TestReduceExample1DerivesRd1 is experiment E5: the reducer mechanically
// derives the paper's Rd1 from R1–R3 — a single reaction consuming all four
// inputs and producing m in one step.
func TestReduceExample1DerivesRd1(t *testing.T) {
	prog, err := gammalang.ParseProgram("ex1", paper.Example1GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	reduced, fused, err := Reduce(prog)
	if err != nil {
		t.Fatal(err)
	}
	if fused != 2 || len(reduced.Reactions) != 1 {
		t.Fatalf("fused=%d reactions=%d, want 2 fusions into 1 reaction:\n%s",
			fused, len(reduced.Reactions), gammalang.Format(reduced))
	}
	rd := reduced.Reactions[0]
	if rd.Arity() != 4 {
		t.Errorf("arity = %d, want 4 (A1, B1, C1, D1)", rd.Arity())
	}
	// Behavioural check across inputs: reduced and original agree, and the
	// reduced run takes exactly one step (the granularity trade-off).
	for _, in := range [][4]int64{{1, 5, 3, 2}, {7, -2, 4, 4}, {0, 0, 1, 1}} {
		mk := func() *multiset.Multiset {
			return multiset.New(
				multiset.Pair(value.Int(in[0]), "A1"),
				multiset.Pair(value.Int(in[1]), "B1"),
				multiset.Pair(value.Int(in[2]), "C1"),
				multiset.Pair(value.Int(in[3]), "D1"),
			)
		}
		m1, m2 := mk(), mk()
		s1, err := gamma.Run(prog, m1, gamma.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := gamma.Run(reduced, m2, gamma.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !m1.Equal(m2) {
			t.Errorf("inputs %v: original %s vs reduced %s", in, m1, m2)
		}
		if s1.Steps != 3 || s2.Steps != 1 {
			t.Errorf("inputs %v: steps %d/%d, want 3/1", in, s1.Steps, s2.Steps)
		}
	}
}

// TestReduceMatchesPaperRd1Result checks the reducer output against the
// paper's hand-written Rd1 listing on the paper's inputs.
func TestReduceMatchesPaperRd1Result(t *testing.T) {
	orig, err := gammalang.ParseProgram("ex1", paper.Example1GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	reduced, _, err := Reduce(orig)
	if err != nil {
		t.Fatal(err)
	}
	paperRd1, err := gammalang.ParseProgram("rd1", paper.ReducedExample1Listing)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m1.Clone()
	if _, err := gamma.Run(reduced, m1, gamma.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := gamma.Run(paperRd1, m2, gamma.Options{}); err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2) {
		t.Errorf("derived Rd1 %s vs paper Rd1 %s", m1, m2)
	}
}

func TestReduceConvertedFig1(t *testing.T) {
	// The reducer also collapses Algorithm 1's output for Fig. 1 (triplet
	// elements with tags).
	prog, init, err := ToGamma(paper.Fig1Graph())
	if err != nil {
		t.Fatal(err)
	}
	reduced, fused, err := Reduce(prog)
	if err != nil {
		t.Fatal(err)
	}
	if fused != 2 || len(reduced.Reactions) != 1 {
		t.Fatalf("fused=%d reactions=%d:\n%s", fused, len(reduced.Reactions), gammalang.Format(reduced))
	}
	if _, err := gamma.Run(reduced, init, gamma.Options{}); err != nil {
		t.Fatal(err)
	}
	if init.Len() != 1 || !init.Contains(multiset.IntElem(0, "m", 0)) {
		t.Errorf("reduced run result = %s", init)
	}
}

func TestReduceLeavesLoopsAlone(t *testing.T) {
	// Example 2's loop reactions must not fuse: inctags change tags, steers
	// are conditional, and loop-carried labels are produced and consumed in
	// ways that break linearity. The program must be returned unchanged.
	prog, err := gammalang.ParseProgram("ex2", paper.Example2GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	reduced, fused, err := Reduce(prog)
	if err != nil {
		t.Fatal(err)
	}
	if fused != 0 || len(reduced.Reactions) != 9 {
		t.Errorf("fused=%d reactions=%d, want no fusion", fused, len(reduced.Reactions))
	}
}

func TestReducePartialChain(t *testing.T) {
	// A chain a→b→c with a branch point (label 'mid' consumed twice) only
	// fuses the linear part.
	src := `
P1 = replace [x, 'in'] by [x + 1, 'mid']
P2 = replace [x, 'mid'] by [x * 2, 'out1']
`
	prog, err := gammalang.ParseProgram("p", src)
	if err != nil {
		t.Fatal(err)
	}
	reduced, fused, err := Reduce(prog)
	if err != nil {
		t.Fatal(err)
	}
	if fused != 1 || len(reduced.Reactions) != 1 {
		t.Fatalf("fused=%d:\n%s", fused, gammalang.Format(reduced))
	}
	m := multiset.New(multiset.Pair(value.Int(5), "in"))
	if _, err := gamma.Run(reduced, m, gamma.Options{}); err != nil {
		t.Fatal(err)
	}
	if !m.Contains(multiset.Pair(value.Int(12), "out1")) {
		t.Errorf("result = %s, want {[12, 'out1']}", m)
	}

	// Now with two consumers of 'mid': no fusion.
	src2 := src + `P3 = replace [y, 'mid'] by [y - 1, 'out2']`
	prog2, err := gammalang.ParseProgram("p2", src2)
	if err != nil {
		t.Fatal(err)
	}
	_, fused2, err := Reduce(prog2)
	if err != nil {
		t.Fatal(err)
	}
	if fused2 != 0 {
		t.Errorf("branch point fused %d times, want 0", fused2)
	}
}

func TestReduceFusesIntoConditionalConsumer(t *testing.T) {
	// The consumer may be conditional: the producer's expression is
	// substituted into the condition too.
	src := `
P1 = replace [x, 'in'] by [x * x, 'sq']
P2 = replace [y, 'sq'] by [y, 'big'] if y > 100
     by 0 else
`
	prog, err := gammalang.ParseProgram("p", src)
	if err != nil {
		t.Fatal(err)
	}
	reduced, fused, err := Reduce(prog)
	if err != nil {
		t.Fatal(err)
	}
	if fused != 1 || len(reduced.Reactions) != 1 {
		t.Fatalf("fused=%d:\n%s", fused, gammalang.Format(reduced))
	}
	run := func(v int64) *multiset.Multiset {
		m := multiset.New(multiset.Pair(value.Int(v), "in"))
		if _, err := gamma.Run(reduced, m, gamma.Options{}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	if m := run(11); !m.Contains(multiset.Pair(value.Int(121), "big")) {
		t.Errorf("11: %s", m)
	}
	if m := run(3); m.Len() != 0 {
		t.Errorf("3: %s, want empty", m)
	}
}

// TestReduceFusionFoldsInCompiledKernel pins the §III-A3 interaction between
// the reducer and the kernel compiler: fusion splices the producer's product
// expression into the consumer textually, leaving literal chains ("id1+0"-
// style subtrees) in the fused condition and products. expr.Compile runs
// expr.Fold before lowering, so the compiled kernel never evaluates those
// chains at run time — and, foldable or not, the fused reaction must behave
// exactly like the original two-step program.
func TestReduceFusionFoldsInCompiledKernel(t *testing.T) {
	src := `
P1 = replace [x, 'in'] by [x + (2 + 3), 'mid']
P2 = replace [y, 'mid'] by [y * 2, 'out'] if y > 2 + 3
     by [y - (1 + 1), 'out'] else
`
	prog, err := gammalang.ParseProgram("p", src)
	if err != nil {
		t.Fatal(err)
	}
	reduced, fused, err := Reduce(prog)
	if err != nil {
		t.Fatal(err)
	}
	if fused != 1 || len(reduced.Reactions) != 1 {
		t.Fatalf("fused=%d:\n%s", fused, gammalang.Format(reduced))
	}
	// The fused branches must contain work for the folder: Fold(e) differs
	// from e wherever fusion left a constant subtree behind.
	rd := reduced.Reactions[0]
	folds := 0
	for _, b := range rd.Branches {
		if b.Cond != nil && fmt.Sprint(expr.Fold(b.Cond)) != fmt.Sprint(b.Cond) {
			folds++
		}
		for _, prod := range b.Products {
			for _, f := range prod {
				if fmt.Sprint(expr.Fold(f)) != fmt.Sprint(f) {
					folds++
				}
			}
		}
	}
	if folds == 0 {
		t.Fatalf("fusion left no foldable literal chains — the regression this test pins is gone:\n%s",
			gammalang.Format(reduced))
	}
	// Behaviour parity through the compiled kernels, both guard outcomes.
	for _, v := range []int64{0, 7, -3} {
		m1 := multiset.New(multiset.Pair(value.Int(v), "in"))
		m2 := m1.Clone()
		s1, err := gamma.Run(prog, m1, gamma.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := gamma.Run(reduced, m2, gamma.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !m1.Equal(m2) {
			t.Errorf("v=%d: original %s vs fused %s", v, m1, m2)
		}
		if s1.Steps != 2 || s2.Steps != 1 {
			t.Errorf("v=%d: steps %d/%d, want 2/1", v, s1.Steps, s2.Steps)
		}
	}
}

func TestReduceRenamesCollidingVariables(t *testing.T) {
	// Producer and consumer both use id1; fusion must freshen.
	src := `
P1 = replace [id1, 'a'], [id2, 'b'] by [id1 - id2, 'mid']
P2 = replace [id1, 'mid'], [id2, 'c'] by [id1 * id2, 'out']
`
	prog, err := gammalang.ParseProgram("p", src)
	if err != nil {
		t.Fatal(err)
	}
	reduced, fused, err := Reduce(prog)
	if err != nil {
		t.Fatal(err)
	}
	if fused != 1 {
		t.Fatalf("fused = %d", fused)
	}
	m := multiset.New(
		multiset.Pair(value.Int(10), "a"),
		multiset.Pair(value.Int(4), "b"),
		multiset.Pair(value.Int(3), "c"),
	)
	if _, err := gamma.Run(reduced, m, gamma.Options{}); err != nil {
		t.Fatal(err)
	}
	if !m.Contains(multiset.Pair(value.Int(18), "out")) { // (10-4)*3
		t.Errorf("result = %s, want {[18, 'out']}", m)
	}
}
