package core

import (
	"fmt"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/multiset"
	"repro/internal/value"
)

// ReactionToGraph is Algorithm 2 (step 1): it converts one reaction into a
// dataflow subgraph. Following the paper's case analysis:
//
//   - each replace-list element becomes a root node (lines 2-4), a Const
//     placeholder whose value the mapper fills per match;
//   - when the by list carries conditions, comparison nodes are created for
//     the condition expression and a Steer node per affected root, with the
//     true ports feeding the first branch's expressions and the false ports
//     the else branch's (lines 6-16);
//   - without conditions, arithmetic nodes are created directly over the
//     roots (lines 18-21).
//
// Product elements become terminal edges labelled with the product's label
// field when it is a string literal (else a synthetic out<i> label). A label
// produced by both branches gets a "#f" suffix on the false side; the mapper
// strips it. Tag fields are not represented in the subgraph — a single
// instance computes one activation — which is why loops cannot be recovered
// from reaction syntax alone (the paper's observation about inctag).
func ReactionToGraph(r *gamma.Reaction) (*dataflow.Graph, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(r.Branches) > 2 {
		return nil, fmt.Errorf("core: reaction %s has %d branches; algorithm 2 handles 1 or 2", r.Name, len(r.Branches))
	}
	g := dataflow.NewGraph(r.Name)
	b := &exprBuilder{g: g, src: make(map[string]outPort)}

	// Roots from the replace list: every variable bound by a pattern gets a
	// root vertex (a repeated variable is an equality constraint and shares
	// its root). The paper binds whole elements; binding per field lets
	// conditions read non-value fields too, as the exchange-sort reaction's
	// indices do.
	for i, p := range r.Patterns {
		if p[0].Var == "" {
			return nil, fmt.Errorf("core: reaction %s pattern %d value field is not a variable", r.Name, i)
		}
		for _, f := range p {
			if f.Var == "" {
				continue
			}
			if _, bound := b.src[f.Var]; bound {
				continue
			}
			id := g.AddConst(f.Var, value.Int(0))
			b.src[f.Var] = outPort{node: id, port: 0}
		}
	}

	if r.Branches[0].Cond == nil && len(r.Branches) == 1 {
		// Unconditional: arithmetic trees straight over the roots.
		for pi, tpl := range r.Branches[0].Products {
			if err := b.emitProduct(tpl, pi, "", nil); err != nil {
				return nil, fmt.Errorf("core: reaction %s: %w", r.Name, err)
			}
		}
		return g, nil
	}

	// Conditional: comparison subtree plus one steer per routed source.
	cond := r.Branches[0].Cond
	if cond == nil {
		return nil, fmt.Errorf("core: reaction %s: first branch of a conditional reaction must carry the condition", r.Name)
	}
	ctl, err := b.build(cond)
	if err != nil {
		return nil, fmt.Errorf("core: reaction %s condition: %w", r.Name, err)
	}
	steers := &steerSet{b: b, ctl: ctl, byVar: make(map[string]dataflow.NodeID)}

	seen := make(map[string]bool)
	for pi, tpl := range r.Branches[0].Products {
		if err := b.emitProduct(tpl, pi, "", steers.truePort); err != nil {
			return nil, fmt.Errorf("core: reaction %s: %w", r.Name, err)
		}
		seen[templateLabel(tpl, pi)] = true
	}
	if len(r.Branches) == 2 {
		if c2 := r.Branches[1].Cond; c2 != nil {
			return nil, fmt.Errorf("core: reaction %s: second branch must be an else branch", r.Name)
		}
		for pi, tpl := range r.Branches[1].Products {
			suffix := ""
			if seen[templateLabel(tpl, pi)] {
				suffix = "#f"
			}
			if err := b.emitProduct(tpl, pi+len(r.Branches[0].Products), suffix, steers.falsePort); err != nil {
				return nil, fmt.Errorf("core: reaction %s: %w", r.Name, err)
			}
		}
	}
	return g, nil
}

// outPort locates a value source in a graph under construction.
type outPort struct {
	node dataflow.NodeID
	port int
}

// exprBuilder compiles expression trees into dataflow nodes. varResolve, when
// set, redirects variable references (used to route them through steers).
type exprBuilder struct {
	g          *dataflow.Graph
	src        map[string]outPort
	varResolve func(name string) (outPort, error)
	edgeN      int
	nodeN      int
}

func (b *exprBuilder) freshLabel() string {
	b.edgeN++
	return fmt.Sprintf("e%d", b.edgeN)
}

func (b *exprBuilder) freshName(prefix string) string {
	b.nodeN++
	return fmt.Sprintf("%s%d", prefix, b.nodeN)
}

func (b *exprBuilder) connect(from outPort, to dataflow.NodeID, toPort int) error {
	_, err := b.g.Connect(from.node, from.port, to, toPort, b.freshLabel())
	return err
}

// build compiles e and returns the port producing its value.
func (b *exprBuilder) build(e expr.Expr) (outPort, error) {
	switch n := e.(type) {
	case expr.Lit:
		id := b.g.AddConst(b.freshName("lit"), n.Val)
		return outPort{node: id, port: 0}, nil
	case expr.Var:
		if b.varResolve != nil {
			return b.varResolve(n.Name)
		}
		p, ok := b.src[n.Name]
		if !ok {
			return outPort{}, fmt.Errorf("variable %s is not bound by the replace list", n.Name)
		}
		return p, nil
	case expr.Unary:
		if n.Op == "!" {
			// Logical negation over 1/0 control operands: 1 - x.
			x, err := b.build(n.X)
			if err != nil {
				return outPort{}, err
			}
			id := b.g.AddArithImmLeft(b.freshName("not"), "-", value.Int(1))
			if err := b.connect(x, id, 0); err != nil {
				return outPort{}, err
			}
			return outPort{node: id, port: 0}, nil
		}
		x, err := b.build(n.X)
		if err != nil {
			return outPort{}, err
		}
		id := b.g.AddUnary(b.freshName("un"), n.Op)
		if err := b.connect(x, id, 0); err != nil {
			return outPort{}, err
		}
		return outPort{node: id, port: 0}, nil
	case expr.Binary:
		switch n.Op {
		// Boolean connectives over 1/0 control operands (comparison
		// vertices emit exactly 1 or 0, Algorithm 1 lines 25-27), so
		// conjunction is a product and disjunction is a+b-a*b. This is how
		// multi-comparison conditions like Eq. 2-style guards or the sort
		// example's (i < j) and (a > b) become vertex networks.
		case "and", "&&":
			return b.binaryNode(b.g.AddArith(b.freshName("and"), "*"), n.L, n.R)
		case "or", "||":
			sum, err := b.binaryNode(b.g.AddArith(b.freshName("orSum"), "+"), n.L, n.R)
			if err != nil {
				return outPort{}, err
			}
			prod, err := b.binaryNode(b.g.AddArith(b.freshName("orProd"), "*"), n.L, n.R)
			if err != nil {
				return outPort{}, err
			}
			id := b.g.AddArith(b.freshName("or"), "-")
			if err := b.connect(sum, id, 0); err != nil {
				return outPort{}, err
			}
			if err := b.connect(prod, id, 1); err != nil {
				return outPort{}, err
			}
			return outPort{node: id, port: 0}, nil
		}
		var id dataflow.NodeID
		switch {
		case isArithOp(n.Op):
			id = b.g.AddArith(b.freshName("op"), n.Op)
		case isCompareOp(n.Op):
			id = b.g.AddCompare(b.freshName("cmp"), n.Op)
		default:
			return outPort{}, fmt.Errorf("operator %q has no dataflow vertex", n.Op)
		}
		return b.binaryNode(id, n.L, n.R)
	}
	return outPort{}, fmt.Errorf("expression %s has no dataflow form", e)
}

// binaryNode builds both operand subtrees and wires them into id.
func (b *exprBuilder) binaryNode(id dataflow.NodeID, left, right expr.Expr) (outPort, error) {
	l, err := b.build(left)
	if err != nil {
		return outPort{}, err
	}
	r, err := b.build(right)
	if err != nil {
		return outPort{}, err
	}
	if err := b.connect(l, id, 0); err != nil {
		return outPort{}, err
	}
	if err := b.connect(r, id, 1); err != nil {
		return outPort{}, err
	}
	return outPort{node: id, port: 0}, nil
}

// emitProduct compiles one product template into a terminal edge. resolve,
// when non-nil, routes variable (and literal) sources through steers.
func (b *exprBuilder) emitProduct(tpl gamma.Template, idx int, suffix string, resolve func(e expr.Expr) (outPort, error)) error {
	label := templateLabel(tpl, idx) + suffix
	valueExpr := tpl[0]
	old := b.varResolve
	if resolve != nil {
		// Literal-only products must also be gated by the condition, so the
		// whole expression goes through resolve when it has no variables.
		if len(expr.FreeVars(valueExpr)) == 0 {
			p, err := resolve(valueExpr)
			if err != nil {
				return err
			}
			_, err = b.g.Connect(p.node, p.port, dataflow.NoNode, 0, label)
			return err
		}
		b.varResolve = func(name string) (outPort, error) { return resolve(expr.Var{Name: name}) }
	}
	p, err := b.build(valueExpr)
	b.varResolve = old
	if err != nil {
		return err
	}
	_, err = b.g.Connect(p.node, p.port, dataflow.NoNode, 0, label)
	return err
}

// templateLabel extracts the product's element label: its second field when
// that is a string literal, else a synthetic name.
func templateLabel(tpl gamma.Template, idx int) string {
	if len(tpl) >= 2 {
		if lit, ok := tpl[1].(expr.Lit); ok && lit.Val.Kind() == value.KindString {
			return lit.Val.AsString()
		}
	}
	return fmt.Sprintf("out%d", idx)
}

// steerSet lazily creates one steer per routed source, with all steers driven
// by the same control port (Algorithm 2 lines 10-11).
type steerSet struct {
	b     *exprBuilder
	ctl   outPort
	byVar map[string]dataflow.NodeID
}

func (s *steerSet) steerFor(src outPort, key string) (dataflow.NodeID, error) {
	if key != "" {
		if id, ok := s.byVar[key]; ok {
			return id, nil
		}
	}
	id := s.b.g.AddSteer(s.b.freshName("st"))
	if err := s.b.connect(src, id, 0); err != nil {
		return 0, err
	}
	if err := s.b.connect(s.ctl, id, 1); err != nil {
		return 0, err
	}
	if key != "" {
		s.byVar[key] = id
	}
	return id, nil
}

func (s *steerSet) port(e expr.Expr, steerPort int) (outPort, error) {
	var src outPort
	key := ""
	switch n := e.(type) {
	case expr.Var:
		p, ok := s.b.src[n.Name]
		if !ok {
			return outPort{}, fmt.Errorf("variable %s is not bound by the replace list", n.Name)
		}
		src, key = p, n.Name
	default:
		p, err := s.b.build(e)
		if err != nil {
			return outPort{}, err
		}
		src = p
	}
	id, err := s.steerFor(src, key)
	if err != nil {
		return outPort{}, err
	}
	return outPort{node: id, port: steerPort}, nil
}

func (s *steerSet) truePort(e expr.Expr) (outPort, error) {
	return s.port(e, dataflow.PortTrue)
}

func (s *steerSet) falsePort(e expr.Expr) (outPort, error) {
	return s.port(e, dataflow.PortFalse)
}

// MapResult reports one MapMultiset execution.
type MapResult struct {
	// Instances is the number of subgraph instances created — Fig. 4 shows 3
	// instances covering a 6-element multiset with an arity-2 reaction.
	Instances int
	// Firings accumulates vertex activations across all instances.
	Firings int64
}

// MapMultiset is Algorithm 2's step 2, the multiset-to-dataflow mapping of
// Fig. 4 (which the paper describes but leaves unspecified: "the algorithm
// that efficiently maps elements to dataflow graph is complex and beyond the
// scope of this work"). The implemented semantics, documented in DESIGN.md:
// repeatedly (a) find an enabled match of r in m using the Gamma matcher —
// the same enabling test as the runtime, so mapping terminates exactly when
// Γ does; (b) instantiate a fresh copy of the reaction's subgraph with the
// matched values as its roots; (c) run the instance; (d) feed its terminal
// tokens back into m as elements. The multiset m is modified in place.
func MapMultiset(r *gamma.Reaction, m *multiset.Multiset, opt dataflow.Options) (*MapResult, error) {
	proto, err := ReactionToGraph(r)
	if err != nil {
		return nil, err
	}
	// Per-label element reconstruction: the dataflow instance computes the
	// product's value field; the remaining fields (label, tag, indices) are
	// re-evaluated from the product template under the match bindings. The
	// true branch registers its templates first so colliding labels keep the
	// "#f"-suffixed false-side entries separate.
	meta := make(map[string]gamma.Template)
	idx := 0
	for bi, br := range r.Branches {
		for _, tpl := range br.Products {
			// Synthetic out<idx> names count across branches, mirroring the
			// numbering emitProduct uses while building the subgraph.
			label := templateLabel(tpl, idx)
			idx++
			if bi > 0 {
				if _, dup := meta[label]; dup {
					label += "#f"
				}
			}
			meta[label] = tpl
		}
	}

	res := &MapResult{}
	for {
		match, err := gamma.FindMatch(r, m, nil)
		if err != nil {
			return res, err
		}
		if match == nil {
			return res, nil
		}
		if !m.TryRemoveAll(match.Chosen) {
			return res, fmt.Errorf("core: matched elements vanished during mapping")
		}
		res.Instances++
		inst := proto.Clone(fmt.Sprintf("%s#%d", r.Name, res.Instances), func(l string) string {
			return fmt.Sprintf("%s@%d", l, res.Instances)
		})
		// Fill the roots with the matched values.
		for _, n := range inst.RootNodes() {
			if v, ok := match.Env[n.Name]; ok {
				if err := inst.SetConst(n.ID, v); err != nil {
					return res, err
				}
			}
		}
		run, err := dataflow.Run(inst, opt)
		if err != nil {
			return res, err
		}
		res.Firings += run.Firings
		for label, vals := range run.Outputs {
			base := label
			if i := strings.LastIndex(base, "@"); i >= 0 {
				base = base[:i]
			}
			tpl, ok := meta[base]
			if !ok {
				return res, fmt.Errorf("core: instance output %s has no product template", label)
			}
			for _, tv := range vals {
				tuple := make(multiset.Tuple, len(tpl))
				tuple[0] = tv.Val
				for f := 1; f < len(tpl); f++ {
					fv, err := expr.Eval(tpl[f], match.Env)
					if err != nil {
						return res, fmt.Errorf("core: product field %d of %s: %w", f, base, err)
					}
					tuple[f] = fv
				}
				m.Add(tuple)
			}
		}
	}
}
