package core

import (
	"reflect"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

func mustReaction(t *testing.T, src string) *gamma.Reaction {
	t.Helper()
	r, err := gammalang.ParseReaction(src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestClassifyExample2Listing(t *testing.T) {
	// Every reaction of the paper's Example-2 listing classifies to the
	// vertex kind of the original Fig. 2 graph — the paper's future-work
	// transformation realized.
	prog, err := gammalang.ParseProgram("ex2", paper.Example2GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]dataflow.NodeKind{
		"R11": dataflow.KindIncTag,
		"R12": dataflow.KindIncTag,
		"R13": dataflow.KindIncTag,
		"R14": dataflow.KindCompare,
		"R15": dataflow.KindSteer,
		"R16": dataflow.KindSteer,
		"R17": dataflow.KindSteer,
		"R18": dataflow.KindArith,
		"R19": dataflow.KindArith,
	}
	for _, r := range prog.Reactions {
		spec, err := ClassifyReaction(r)
		if err != nil {
			t.Errorf("%s: %v", r.Name, err)
			continue
		}
		if spec.Kind != want[r.Name] {
			t.Errorf("%s classified as %s, want %s", r.Name, spec.Kind, want[r.Name])
		}
	}
}

func TestClassifyDetails(t *testing.T) {
	// Inctag with merge labels: in-labels recovered from the condition.
	r11 := mustReaction(t, `R11 = replace [id1, x, v] by [id1, 'A12', v + 1] if (x == 'A1') or (x == 'A11')`)
	spec, err := ClassifyReaction(r11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.InLabels, [][]string{{"A1", "A11"}}) {
		t.Errorf("InLabels = %v", spec.InLabels)
	}
	if !reflect.DeepEqual(spec.OutLabels, [][]string{{"A12"}}) {
		t.Errorf("OutLabels = %v", spec.OutLabels)
	}

	// Steer: ports ordered data then control even when the reaction lists
	// the control pattern first.
	st := mustReaction(t, `S = replace [c, 'CTL', v], [d, 'DAT', v]
		by [d, 'T', v] if c == 1
		by [d, 'F', v] else`)
	spec, err = ClassifyReaction(st)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != dataflow.KindSteer {
		t.Fatalf("kind = %s", spec.Kind)
	}
	if !reflect.DeepEqual(spec.InLabels, [][]string{{"DAT"}, {"CTL"}}) {
		t.Errorf("steer InLabels = %v", spec.InLabels)
	}
	if !reflect.DeepEqual(spec.OutLabels, [][]string{{"T"}, {"F"}}) {
		t.Errorf("steer OutLabels = %v", spec.OutLabels)
	}

	// Comparison with immediate: R14's shape.
	r14 := mustReaction(t, `R14 = replace [id1, 'B12', v]
		by [1, 'B14', v], [1, 'B15', v] if id1 > 0
		by [0, 'B14', v], [0, 'B15', v] else`)
	spec, err = ClassifyReaction(r14)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != dataflow.KindCompare || spec.Op != ">" || spec.Imm != value.Int(0) || spec.ImmLeft {
		t.Errorf("compare spec = %+v", spec)
	}

	// Arith with reversed operand order reorders ports.
	ar := mustReaction(t, `A = replace [b, 'RB', v], [a, 'RA', v] by [a - b, 'O', v]`)
	spec, err = ClassifyReaction(ar)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.InLabels, [][]string{{"RA"}, {"RB"}}) {
		t.Errorf("arith InLabels = %v", spec.InLabels)
	}

	// Copy and unary.
	cp := mustReaction(t, `C = replace [x, 'I', v] by [x, 'O1', v], [x, 'O2', v]`)
	if spec, err = ClassifyReaction(cp); err != nil || spec.Kind != dataflow.KindCopy {
		t.Errorf("copy: %v %v", spec, err)
	}
	un := mustReaction(t, `U = replace [x, 'I', v] by [-x, 'O', v]`)
	if spec, err = ClassifyReaction(un); err != nil || spec.Kind != dataflow.KindUnaryOp || spec.Op != "-" {
		t.Errorf("unary: %v %v", spec, err)
	}
	// Immediate-left arith.
	il := mustReaction(t, `L = replace [x, 'I', v] by [100 / x, 'O', v]`)
	if spec, err = ClassifyReaction(il); err != nil || !spec.ImmLeft || spec.Imm != value.Int(100) {
		t.Errorf("imm-left: %+v %v", spec, err)
	}
}

func TestClassifyRejectsGenericReactions(t *testing.T) {
	bad := []string{
		`R = replace [x], [y] by [x] if x < y`,                         // pair elements, not triplets
		`R = replace [x, 'A', v], [y, 'B', v] by [x + y + 1, 'O', v]`,  // expression is not a single vertex
		`R = replace [x, 'A', v] by [x, 'O', v + 1], [x, 'P', v]`,      // mixed tag deltas
		`R = replace [x, 'A', v] by ['lit', 'O', v]`,                   // literal product without condition shape
		`R = replace [x, 'A', v], [y, 'B', v] by [x, 'O', v] if x < y`, // guard on a forwarding reaction
		`R = replace [x, 'A', v] by [x, 'O', w]`,                       // foreign tag variable: rejected at validate
		`R = replace [x, 'A', v], [y, 'B', w] by [x + y, 'O', v]`,      // two tag variables
		`R = replace [x, 'A', v] by 0 if x > 0`,                        // consumes without producing
	}
	for _, src := range bad {
		r, err := gammalang.ParseReaction(src)
		if err != nil {
			continue // rejected even earlier — also fine for the last cases
		}
		if spec, err := ClassifyReaction(r); err == nil {
			t.Errorf("ClassifyReaction(%q) = %+v, want error", src, spec)
		}
	}
}

// TestProgramToGraphRoundTrip is the core equivalence statement: converting
// Fig. 1 / Fig. 2 to Gamma (Algorithm 1) and back yields a graph with
// identical behaviour.
func TestProgramToGraphRoundTrip(t *testing.T) {
	graphs := map[string]*dataflow.Graph{
		"fig1":     paper.Fig1Graph(),
		"fig2-obs": paper.Fig2GraphObservable(10, 4, 3),
		"fig2":     paper.Fig2Graph(),
	}
	for name, g := range graphs {
		prog, init, err := ToGamma(g)
		if err != nil {
			t.Fatalf("%s: ToGamma: %v", name, err)
		}
		back, err := ProgramToGraph(name+"-back", prog, init)
		if err != nil {
			t.Fatalf("%s: ProgramToGraph: %v", name, err)
		}
		res1, err := dataflow.Run(g, dataflow.Options{MaxFirings: 100000})
		if err != nil {
			t.Fatalf("%s: original run: %v", name, err)
		}
		res2, err := dataflow.Run(back, dataflow.Options{MaxFirings: 100000})
		if err != nil {
			t.Fatalf("%s: reconstructed run: %v", name, err)
		}
		if !reflect.DeepEqual(res1.Outputs, res2.Outputs) {
			t.Errorf("%s: outputs differ: %v vs %v", name, res1.Outputs, res2.Outputs)
		}
		if res1.Firings != res2.Firings {
			t.Errorf("%s: firings differ: %d vs %d", name, res1.Firings, res2.Firings)
		}
	}
}

// TestProgramToGraphFromListing reconstructs a dataflow graph from the
// paper's hand-written Example-2 listing (adding tags it already has) and
// runs it: like the listing, it must discard everything.
func TestProgramToGraphFromListing(t *testing.T) {
	prog, err := gammalang.ParseProgram("ex2", paper.Example2GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	init, err := multiset.Parse(paper.Example2InitialMultiset(10, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	g, err := ProgramToGraph("ex2", prog, init)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dataflow.Run(g, dataflow.Options{MaxFirings: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 {
		t.Errorf("outputs = %v, want none (listing discards all state)", res.Outputs)
	}
	// And the Gamma side agrees.
	if _, err := gamma.Run(prog, init, gamma.Options{MaxSteps: 100000}); err != nil {
		t.Fatal(err)
	}
	if init.Len() != 0 {
		t.Errorf("gamma result = %s, want empty", init)
	}
}

func TestProgramToGraphErrors(t *testing.T) {
	mk := func(srcs ...string) *gamma.Program {
		var rs []*gamma.Reaction
		for _, s := range srcs {
			rs = append(rs, mustReaction(t, s))
		}
		return gamma.MustProgram("p", rs...)
	}
	// Unknown consumed label.
	p := mk(`A = replace [x, 'IN', v] by [x, 'OUT', v]`)
	if _, err := ProgramToGraph("p", p, multiset.New()); err == nil {
		t.Error("missing producer should error")
	}
	// Two producers for one label.
	p2 := mk(
		`A = replace [x, 'I1', v] by [x, 'O', v]`,
		`B = replace [x, 'I2', v] by [x, 'O', v]`,
	)
	init2 := multiset.New(multiset.IntElem(1, "I1", 0), multiset.IntElem(2, "I2", 0))
	if _, err := ProgramToGraph("p", p2, init2); err == nil {
		t.Error("duplicate producer should error")
	}
	// Label consumed twice.
	p3 := mk(
		`A = replace [x, 'I', v] by [x, 'I2', v]`,
		`B = replace [x, 'I2', v] by [x, 'O1', v]`,
		`C = replace [x, 'I2', v] by [x, 'O2', v]`,
	)
	init3 := multiset.New(multiset.IntElem(1, "I", 0))
	if _, err := ProgramToGraph("p", p3, init3); err == nil {
		t.Error("doubly consumed label should error")
	}
	// Bad initial elements.
	p4 := mk(`A = replace [x, 'I', v] by [x, 'O', v]`)
	for _, init := range []*multiset.Multiset{
		multiset.New(multiset.Tuple{value.Int(1)}), // no label
		multiset.New(multiset.IntElem(1, "I", 2)),  // nonzero tag
	} {
		if _, err := ProgramToGraph("p", p4, init); err == nil {
			t.Errorf("bad init %s should error", init)
		}
	}
	dup := multiset.New(multiset.IntElem(1, "I", 0))
	dup.Add(multiset.IntElem(1, "I", 0))
	if _, err := ProgramToGraph("p", p4, dup); err == nil {
		t.Error("multiplicity >1 init should error")
	}
	// Generic reaction fails classification.
	p5 := mk(`A = replace [x, 'I', v], [y, 'J', v] by [x + y + 1, 'O', v]`)
	if _, err := ProgramToGraph("p", p5, multiset.New()); err == nil {
		t.Error("generic reaction should error")
	}
}

// TestReactionToGraphUnconditional: Rd1's fused expression builds an
// expression tree and evaluates like the original.
func TestReactionToGraphUnconditional(t *testing.T) {
	rd1, err := gammalang.ParseProgram("rd1", paper.ReducedExample1Listing)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ReactionToGraph(rd1.Reactions[0])
	if err != nil {
		t.Fatal(err)
	}
	// Roots are placeholders; set the paper's inputs.
	vals := map[string]int64{"id1": 1, "id2": 5, "id3": 3, "id4": 2}
	for name, v := range vals {
		n := g.NodeByName(name)
		if n == nil {
			t.Fatalf("missing root %s in\n%s", name, g)
		}
		if err := g.SetConst(n.ID, value.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := res.Output("m"); !ok || out != value.Int(0) {
		t.Errorf("m = %v, want 0", out)
	}
}

// TestReactionToGraphConditional: a steer-like reaction routes by its
// condition through comparison and steer nodes (Algorithm 2 lines 6-16).
func TestReactionToGraphConditional(t *testing.T) {
	r := mustReaction(t, `R = replace [x, 'X', v], [y, 'Y', v]
		by [x + y, 'SUM', v] if x < y
		by [x - y, 'DIFF', v] else`)
	g, err := ReactionToGraph(r)
	if err != nil {
		t.Fatal(err)
	}
	set := func(name string, v int64) {
		n := g.NodeByName(name)
		if n == nil {
			t.Fatalf("missing root %s", name)
		}
		if err := g.SetConst(n.ID, value.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	set("x", 2)
	set("y", 5)
	res, err := dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := res.Output("SUM"); !ok || out != value.Int(7) {
		t.Errorf("SUM = %v, want 7", out)
	}
	if _, ok := res.Output("DIFF"); ok {
		t.Error("DIFF should not fire when x < y")
	}
	// Flip the condition.
	set("x", 9)
	res, err = dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := res.Output("DIFF"); !ok || out != value.Int(4) {
		t.Errorf("DIFF = %v, want 4", out)
	}
	if _, ok := res.Output("SUM"); ok {
		t.Error("SUM should not fire when x >= y")
	}
}

func TestReactionToGraphLiteralProductsGated(t *testing.T) {
	// A compare-shaped reaction: literal products must be gated by the
	// condition, so exactly one branch's element appears.
	r := mustReaction(t, `R = replace [x, 'X', v]
		by [1, 'C', v] if x > 0
		by [0, 'C', v] else`)
	g, err := ReactionToGraph(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetConst(g.NodeByName("x").ID, value.Int(5)); err != nil {
		t.Fatal(err)
	}
	res, err := dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := res.Output("C"); !ok || out != value.Int(1) {
		t.Errorf("C = %v, want 1", out)
	}
	if _, ok := res.Output("C#f"); ok {
		t.Error("false-side C#f should not fire for x > 0")
	}
}

func TestReactionToGraphErrors(t *testing.T) {
	bad := []string{
		`R = replace [x] by [min(x, 1)]`,        // calls have no vertex
		`R = replace [x] by [x] if x > 0 where`, // parse error, skipped below
	}
	for _, src := range bad {
		r, err := gammalang.ParseReaction(src)
		if err != nil {
			continue
		}
		if _, err := ReactionToGraph(r); err == nil {
			t.Errorf("ReactionToGraph(%q) should error", src)
		}
	}
	// Three branches.
	r3 := &gamma.Reaction{
		Name:     "tri",
		Patterns: []gamma.Pattern{{gamma.FVar("x")}},
		Branches: []gamma.Branch{
			{Cond: expr.MustParse("x > 0")},
			{Cond: expr.MustParse("x < 0")},
			{},
		},
	}
	if _, err := ReactionToGraph(r3); err == nil {
		t.Error("three branches should error")
	}
	// A repeated variable is an equality constraint: both patterns share
	// one root in the subgraph.
	rd := mustReaction(t, `R = replace [x, 'A', v], [x, 'B', v] by [x, 'O', v]`)
	g, err := ReactionToGraph(rd)
	if err != nil {
		t.Fatalf("shared variable should build: %v", err)
	}
	roots := 0
	for _, n := range g.Nodes {
		if n.Kind == dataflow.KindConst {
			roots++
		}
	}
	if roots != 2 { // x and v
		t.Errorf("roots = %d, want 2 (x shared, v shared)", roots)
	}
}

// TestReactionToGraphSwapSort converts the exchange-sort reaction — whose
// condition reads the index fields and whose products carry variables in the
// label position — and executes one swap.
func TestReactionToGraphSwapSort(t *testing.T) {
	swap := mustReaction(t, `S = replace [a, i], [b, j] by [b, i], [a, j] if (i < j) and (a > b)`)
	g, err := ReactionToGraph(swap)
	if err != nil {
		t.Fatal(err)
	}
	set := func(name string, v int64) {
		n := g.NodeByName(name)
		if n == nil {
			t.Fatalf("missing root %s in\n%s", name, g)
		}
		if err := g.SetConst(n.ID, value.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	set("a", 9)
	set("b", 4)
	set("i", 0)
	set("j", 1)
	res, err := dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order pair: both products fire, swapped.
	if v, ok := res.Output("out0"); !ok || v != value.Int(4) {
		t.Errorf("out0 = %v, want 4 (b)", v)
	}
	if v, ok := res.Output("out1"); !ok || v != value.Int(9) {
		t.Errorf("out1 = %v, want 9 (a)", v)
	}
	// In-order pair: the condition gates everything off.
	set("a", 1)
	res, err = dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 {
		t.Errorf("in-order pair should produce nothing: %v", res.Outputs)
	}
}

// TestMapMultisetSwapSort sorts a sequence entirely through dataflow
// instances of the swap reaction.
func TestMapMultisetSwapSort(t *testing.T) {
	swap := mustReaction(t, `S = replace [a, i], [b, j] by [b, i], [a, j] if (i < j) and (a > b)`)
	m := multiset.New()
	input := []int64{5, 3, 4, 1, 2}
	for idx, v := range input {
		m.Add(multiset.Tuple{value.Int(v), value.Int(int64(idx))})
	}
	if _, err := MapMultiset(swap, m, dataflow.Options{}); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, len(input))
	m.ForEach(func(t multiset.Tuple, n int) bool {
		got[t[1].AsInt()] = t[0].AsInt()
		return true
	})
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("not sorted: %v (multiset %s)", got, m)
		}
	}
}

// TestFig4Replication is experiment E8: an arity-2 reaction over a 6-element
// multiset instantiates exactly 3 subgraph copies, as drawn in Fig. 4.
func TestFig4Replication(t *testing.T) {
	r := mustReaction(t, `R = replace [x, 'a'], [y, 'a'] by [x + y, 'b']`)
	m := multiset.New()
	for i := int64(1); i <= 6; i++ {
		m.Add(multiset.Pair(value.Int(i), "a"))
	}
	res, err := MapMultiset(r, m, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 3 {
		t.Errorf("instances = %d, want 3 (Fig. 4)", res.Instances)
	}
	if m.Len() != 3 {
		t.Errorf("final multiset = %s, want 3 'b' elements", m)
	}
	total := int64(0)
	for _, c := range m.ByLabel("b") {
		total += c.Tuple.Value().AsInt() * int64(c.N)
	}
	if total != 21 {
		t.Errorf("sum of 'b' values = %d, want 21", total)
	}
}

// TestMapMultisetMinElement runs Eq. 2 entirely through dataflow instances:
// the mapper keeps instantiating the min-reaction subgraph until the Gamma
// fixpoint, leaving only the smallest element.
func TestMapMultisetMinElement(t *testing.T) {
	r := mustReaction(t, `R = replace (x, y) by x where x < y`)
	m := multiset.New()
	for _, v := range []int64{9, 4, 7, 1, 8, 3} {
		m.Add(multiset.New1(value.Int(v)))
	}
	res, err := MapMultiset(r, m, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.New1(value.Int(1))) {
		t.Fatalf("result = %s, want {1}", m)
	}
	if res.Instances != 5 {
		t.Errorf("instances = %d, want 5", res.Instances)
	}
}

// TestMapMultisetTaggedSteer checks tag reconstruction through the mapper:
// a steer reaction keeps the matched tag on its products.
func TestMapMultisetTaggedSteer(t *testing.T) {
	r := mustReaction(t, `S = replace [d, 'DAT', v], [c, 'CTL', v]
		by [d, 'T', v] if c == 1
		by 0 else`)
	m := multiset.New(
		multiset.IntElem(42, "DAT", 7),
		multiset.IntElem(1, "CTL", 7),
		multiset.IntElem(99, "DAT", 8),
		multiset.IntElem(0, "CTL", 8),
	)
	if _, err := MapMultiset(r, m, dataflow.Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.IntElem(42, "T", 7)) {
		t.Errorf("result = %s, want {[42, 'T', 7]}", m)
	}
}
