package core

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/value"
)

// Reduce implements the §III-A3 reductions: it fuses producer reactions into
// their consumers, shrinking the reaction count at the cost of match
// opportunities ("the opportunity to explore the parallelism of reactions
// decreases", as the paper puts it). Applied to the Example-1 program it
// derives Rd1: one reaction consuming A1, B1, C1, D1 and producing
// (id1+id2)-(id3*id4) directly.
//
// A fusion step folds reaction A into reaction B when:
//
//   - A has a single unconditional branch with a single product, whose label
//     is a string literal L and whose tag is unchanged (inctag-style
//     reactions change iteration structure and are never fused);
//   - A's patterns use literal labels (no merge ports);
//   - L is produced only by A and consumed only by B, in exactly one pattern.
//
// Under those conditions the intermediate element L is linear: every firing
// of B at some tag consumes exactly the element a firing of A produced at
// that tag, so substituting A's product expression for L's value variable in
// B (and splicing in A's patterns) preserves the stable multiset. Steps
// repeat until no fusion applies; the second return value is the number of
// fusions performed.
func Reduce(p *gamma.Program) (*gamma.Program, int, error) {
	reactions := append([]*gamma.Reaction(nil), p.Reactions...)
	fused := 0
	for {
		ai, bi, pi, ok := findFusion(reactions)
		if !ok {
			out, err := gamma.NewProgram(p.Name+"-reduced", reactions...)
			return out, fused, err
		}
		merged, err := fuse(reactions[ai], reactions[bi], pi)
		if err != nil {
			return nil, fused, err
		}
		var next []*gamma.Reaction
		for i, r := range reactions {
			switch i {
			case ai:
				// dropped
			case bi:
				next = append(next, merged)
			default:
				next = append(next, r)
			}
		}
		reactions = next
		fused++
	}
}

// fusible reports whether r can act as producer A, returning its product.
func fusible(r *gamma.Reaction) (label string, prod gamma.Template, ok bool) {
	if len(r.Branches) != 1 || r.Branches[0].Cond != nil || len(r.Branches[0].Products) != 1 {
		return "", nil, false
	}
	for _, p := range r.Patterns {
		if len(p) < 2 || p[1].Var != "" || p[1].Lit.Kind() != value.KindString {
			return "", nil, false
		}
	}
	tpl := r.Branches[0].Products[0]
	if len(tpl) < 2 {
		return "", nil, false
	}
	lit, isLit := tpl[1].(expr.Lit)
	if !isLit || lit.Val.Kind() != value.KindString {
		return "", nil, false
	}
	// Tag must be unchanged (a bare variable or absent).
	if len(tpl) >= 3 {
		if _, isVar := tpl[2].(expr.Var); !isVar {
			return "", nil, false
		}
	}
	return lit.Val.AsString(), tpl, true
}

// findFusion locates a producer/consumer pair: indices of A and B and the
// index of B's pattern consuming A's product label.
func findFusion(reactions []*gamma.Reaction) (ai, bi, pi int, ok bool) {
	// Count producers and consumers per label.
	producedBy := make(map[string][]int)
	for i, r := range reactions {
		for _, b := range r.Branches {
			for _, tpl := range b.Products {
				if len(tpl) >= 2 {
					if lit, isLit := tpl[1].(expr.Lit); isLit && lit.Val.Kind() == value.KindString {
						producedBy[lit.Val.AsString()] = append(producedBy[lit.Val.AsString()], i)
					}
				}
			}
		}
	}
	type consumer struct{ reaction, pattern int }
	consumedBy := make(map[string][]consumer)
	for i, r := range reactions {
		for j, p := range r.Patterns {
			if len(p) >= 2 && p[1].Var == "" && p[1].Lit.Kind() == value.KindString {
				l := p[1].Lit.AsString()
				consumedBy[l] = append(consumedBy[l], consumer{i, j})
			}
		}
	}
	for i, r := range reactions {
		label, _, can := fusible(r)
		if !can {
			continue
		}
		if len(producedBy[label]) != 1 || len(consumedBy[label]) != 1 {
			continue
		}
		c := consumedBy[label][0]
		if c.reaction == i {
			continue // self-loop
		}
		return i, c.reaction, c.pattern, true
	}
	return 0, 0, 0, false
}

// fuse folds producer a into consumer b at b's pattern index pi.
func fuse(a, b *gamma.Reaction, pi int) (*gamma.Reaction, error) {
	_, prod, ok := fusible(a)
	if !ok {
		return nil, fmt.Errorf("core: reaction %s is not fusible", a.Name)
	}
	// Variables already used in b, to keep renamed a-variables fresh.
	used := make(map[string]bool)
	for _, p := range b.Patterns {
		for _, f := range p {
			if f.Var != "" {
				used[f.Var] = true
			}
		}
	}
	freshen := func(name string) string {
		if !used[name] {
			used[name] = true
			return name
		}
		for i := 1; ; i++ {
			cand := fmt.Sprintf("%s_%d", name, i)
			if !used[cand] {
				used[cand] = true
				return cand
			}
		}
	}

	// Rename a's variables, mapping a's tag variable onto b's consumed tag.
	rename := make(map[string]expr.Expr)
	bTagField := gamma.Field{}
	if len(b.Patterns[pi]) >= 3 {
		bTagField = b.Patterns[pi][2]
	}
	var aPatterns []gamma.Pattern
	for _, p := range a.Patterns {
		np := make(gamma.Pattern, len(p))
		copy(np, p)
		if np[0].Var != "" {
			nv := freshen(np[0].Var)
			rename[np[0].Var] = expr.Var{Name: nv}
			np[0] = gamma.FVar(nv)
		}
		if len(np) >= 3 && np[2].Var != "" {
			// Unify iteration tags: a's elements must carry the tag b
			// consumes at.
			if _, mapped := rename[np[2].Var]; !mapped {
				if bTagField.Var != "" {
					rename[np[2].Var] = expr.Var{Name: bTagField.Var}
				}
			}
			if bTagField.Var != "" {
				np[2] = gamma.FVar(bTagField.Var)
			}
		}
		aPatterns = append(aPatterns, np)
	}

	// The expression a produces, in fused-variable terms.
	prodExpr := expr.Subst(prod[0], rename)
	consumedVar := b.Patterns[pi][0].Var
	subst := map[string]expr.Expr{consumedVar: prodExpr}

	merged := &gamma.Reaction{Name: b.Name}
	for j, p := range b.Patterns {
		if j == pi {
			merged.Patterns = append(merged.Patterns, aPatterns...)
			continue
		}
		merged.Patterns = append(merged.Patterns, p)
	}
	for _, br := range b.Branches {
		nb := gamma.Branch{}
		if br.Cond != nil {
			nb.Cond = expr.Subst(br.Cond, subst)
		}
		for _, tpl := range br.Products {
			ntpl := make(gamma.Template, len(tpl))
			for k, e := range tpl {
				ntpl[k] = expr.Subst(e, subst)
			}
			nb.Products = append(nb.Products, ntpl)
		}
		merged.Branches = append(merged.Branches, nb)
	}
	if err := merged.Validate(); err != nil {
		return nil, fmt.Errorf("core: fusion of %s into %s is invalid: %w", a.Name, b.Name, err)
	}
	return merged, nil
}
