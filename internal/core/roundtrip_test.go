package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/equiv"
	"repro/internal/gammalang"
)

// TestClassifierInvertsAlgorithm1 is the property backing the paper's future
// work: for random graphs, every reaction Algorithm 1 emits classifies back
// to the vertex kind (and operator) it came from.
func TestClassifierInvertsAlgorithm1(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		g := equiv.RandomGraph(seed*3, 4, 12+int(seed))
		prog, _, err := core.ToGamma(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		byName := make(map[string]*dataflow.Node)
		for _, n := range g.Nodes {
			byName[n.Name] = n
		}
		for _, r := range prog.Reactions {
			spec, err := core.ClassifyReaction(r)
			if err != nil {
				t.Errorf("seed %d: reaction %s: %v\n%s", seed, r.Name, err, gammalang.FormatReaction(r))
				continue
			}
			orig := byName[r.Name]
			if orig == nil {
				t.Errorf("seed %d: reaction %s has no source vertex", seed, r.Name)
				continue
			}
			if spec.Kind != orig.Kind {
				t.Errorf("seed %d: %s classified %s, want %s", seed, r.Name, spec.Kind, orig.Kind)
			}
			if spec.Op != orig.Op {
				t.Errorf("seed %d: %s operator %q, want %q", seed, r.Name, spec.Op, orig.Op)
			}
			if spec.Imm != orig.Imm || spec.ImmLeft != orig.ImmLeft {
				t.Errorf("seed %d: %s immediate %v/%v, want %v/%v",
					seed, r.Name, spec.Imm, spec.ImmLeft, orig.Imm, orig.ImmLeft)
			}
		}
	}
}

// TestRoundTripRandomGraphs: graph → Gamma → graph preserves behaviour and
// firing counts on random graphs.
func TestRoundTripRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		g := equiv.RandomGraph(seed*7+1, 3, 10+int(seed)*2)
		prog, init, err := core.ToGamma(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := core.ProgramToGraph("back", prog, init)
		if err != nil {
			t.Fatalf("seed %d: reconstruct: %v\n%s", seed, err, gammalang.Format(prog))
		}
		r1, err := dataflow.Run(g, dataflow.Options{MaxFirings: 100000})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := dataflow.Run(back, dataflow.Options{MaxFirings: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Outputs, r2.Outputs) {
			t.Errorf("seed %d: outputs differ\n%v\nvs\n%v", seed, r1.Outputs, r2.Outputs)
		}
		// Compare operator (non-root) firings: a fanout root in the original
		// becomes one root per initial element in the reconstruction, so the
		// const census legitimately differs.
		op1 := r1.Firings - int64(len(g.RootNodes()))
		op2 := r2.Firings - int64(len(back.RootNodes()))
		if op1 != op2 || r1.Pending != r2.Pending {
			t.Errorf("seed %d: operator firings %d/%d pending %d/%d",
				seed, op1, op2, r1.Pending, r2.Pending)
		}
	}
}

// TestDoubleConversionIsStable: converting the reconstructed graph again
// yields a program with the same reaction census.
func TestDoubleConversionIsStable(t *testing.T) {
	g := equiv.RandomGraph(99, 4, 24)
	prog1, init1, err := core.ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.ProgramToGraph("back", prog1, init1)
	if err != nil {
		t.Fatal(err)
	}
	prog2, init2, err := core.ToGamma(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog1.Reactions) != len(prog2.Reactions) {
		t.Errorf("reaction counts differ: %d vs %d", len(prog1.Reactions), len(prog2.Reactions))
	}
	if !init1.Equal(init2) {
		t.Errorf("initial multisets differ: %s vs %s", init1, init2)
	}
}
