package core

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/value"
)

// NodeSpec is the classifier's verdict on a reaction: the dataflow vertex it
// behaves as, with the edge labels it consumes per input port and produces
// per output port. This implements the transformation the paper leaves as
// future work in §IV: "identify kinds of dataflow nodes (steer, inctag, etc)
// via the analysis of the behavior of Gamma reactions".
type NodeSpec struct {
	Name    string
	Kind    dataflow.NodeKind
	Op      string
	Imm     value.Value
	ImmLeft bool
	// InLabels lists, per input port, the edge labels the port accepts (a
	// merge port accepts several, like R11's A1/A11).
	InLabels [][]string
	// OutLabels lists, per output port, the labels produced. For steer
	// vertices index 0 is the true port and 1 the false port.
	OutLabels [][]string
}

// ClassifyError reports a reaction the classifier cannot map to a single
// dataflow vertex.
type ClassifyError struct {
	Reaction string
	Reason   string
}

func (e *ClassifyError) Error() string {
	return fmt.Sprintf("core: reaction %s is not vertex-shaped: %s", e.Reaction, e.Reason)
}

// patternShape is the decomposed form of an Algorithm-1-style pattern
// [valueVar, label, tagVar].
type patternShape struct {
	valueVar string
	labelVar string   // set when the label field is a variable
	labels   []string // literal label, or merge labels recovered from conds
}

// ClassifyReaction analyzes a reaction's replace list, conditions and
// products and returns the dataflow vertex it is equivalent to. Reactions
// must follow the triplet element convention [value, label, tag]; anything
// else is reported as a ClassifyError (such reactions are still executable by
// the Gamma runtime and convertible per-reaction by ReactionToGraph — they
// just do not correspond to a single vertex).
func ClassifyReaction(r *gamma.Reaction) (*NodeSpec, error) {
	fail := func(reason string) (*NodeSpec, error) {
		return nil, &ClassifyError{Reaction: r.Name, Reason: reason}
	}
	if err := r.Validate(); err != nil {
		return fail(err.Error())
	}

	// 1. Decompose patterns.
	shapes := make([]patternShape, len(r.Patterns))
	tagVar := ""
	for i, p := range r.Patterns {
		if len(p) != 3 {
			return fail(fmt.Sprintf("pattern %d has arity %d, want 3 ([value, label, tag])", i, len(p)))
		}
		if p[0].Var == "" {
			return fail(fmt.Sprintf("pattern %d value field is not a variable", i))
		}
		shapes[i].valueVar = p[0].Var
		switch {
		case p[1].Var != "":
			shapes[i].labelVar = p[1].Var
		case p[1].Lit.Kind() == value.KindString:
			shapes[i].labels = []string{p[1].Lit.AsString()}
		default:
			return fail(fmt.Sprintf("pattern %d label field is not a string or variable", i))
		}
		if p[2].Var == "" {
			return fail(fmt.Sprintf("pattern %d tag field is not a variable", i))
		}
		if tagVar == "" {
			tagVar = p[2].Var
		} else if p[2].Var != tagVar {
			return fail("patterns do not share one tag variable")
		}
	}

	// 2. Decompose branch conditions into merge-label constraints and one
	// operative condition per branch.
	type branchInfo struct {
		operative expr.Expr // nil for unconditional/else
		products  []productShape
	}
	branches := make([]branchInfo, len(r.Branches))
	mergeSeen := make(map[string][]string) // labelVar -> labels (must agree across branches)
	for bi, b := range r.Branches {
		var operative expr.Expr
		for _, conjunct := range splitConjuncts(b.Cond) {
			if lv, labels, ok := labelDisjunction(conjunct, shapes); ok {
				sort.Strings(labels)
				if prev, seen := mergeSeen[lv]; seen && !reflect.DeepEqual(prev, labels) {
					return fail(fmt.Sprintf("branches disagree on labels for %s", lv))
				}
				mergeSeen[lv] = labels
				continue
			}
			if operative != nil {
				return fail("more than one operative condition conjunct")
			}
			operative = conjunct
		}
		branches[bi].operative = operative
		for _, tpl := range b.Products {
			ps, err := decomposeProduct(tpl, tagVar)
			if err != nil {
				return fail(err.Error())
			}
			branches[bi].products = append(branches[bi].products, ps)
		}
	}
	for i := range shapes {
		if shapes[i].labelVar != "" {
			labels, ok := mergeSeen[shapes[i].labelVar]
			if !ok {
				return fail(fmt.Sprintf("label variable %s is unconstrained", shapes[i].labelVar))
			}
			shapes[i].labels = labels
		}
	}

	spec := &NodeSpec{Name: r.Name}
	for _, s := range shapes {
		spec.InLabels = append(spec.InLabels, s.labels)
	}

	// 3. Case analysis over branch count and product shapes.
	switch len(branches) {
	case 1:
		return classifySingleBranch(r, spec, shapes, tagVar, branches[0].operative, branches[0].products)
	case 2:
		return classifyTwoBranch(r, spec, shapes, tagVar,
			branches[0].operative, branches[0].products,
			branches[1].operative, branches[1].products)
	}
	return fail(fmt.Sprintf("%d branches; vertex-shaped reactions have 1 or 2", len(branches)))
}

// productShape is the decomposed form of a product template
// [valueExpr, 'label', tagExpr].
type productShape struct {
	valueExpr expr.Expr
	label     string
	// tagDelta is 0 when the tag expression is the tag variable itself, 1
	// for tag+1 (the inctag signature).
	tagDelta int64
	// tagReset marks the literal-0 tag of a settag vertex's products.
	tagReset bool
}

func decomposeProduct(tpl gamma.Template, tagVar string) (productShape, error) {
	var ps productShape
	if len(tpl) != 3 {
		return ps, fmt.Errorf("product has arity %d, want 3", len(tpl))
	}
	lit, ok := tpl[1].(expr.Lit)
	if !ok || lit.Val.Kind() != value.KindString {
		return ps, fmt.Errorf("product label %s is not a string literal", tpl[1])
	}
	ps.label = lit.Val.AsString()
	ps.valueExpr = tpl[0]
	switch tagE := tpl[2].(type) {
	case expr.Var:
		if tagE.Name != tagVar {
			return ps, fmt.Errorf("product tag %s is not the tag variable", tagE.Name)
		}
	case expr.Lit:
		if tagE.Val != value.Int(0) {
			return ps, fmt.Errorf("product tag literal %s is not 0", tagE.Val)
		}
		ps.tagReset = true
	case expr.Binary:
		l, lok := tagE.L.(expr.Var)
		r, rok := tagE.R.(expr.Lit)
		if tagE.Op != "+" || !lok || l.Name != tagVar || !rok || r.Val != value.Int(1) {
			return ps, fmt.Errorf("product tag expression %s is neither v, v + 1 nor 0", tpl[2])
		}
		ps.tagDelta = 1
	default:
		return ps, fmt.Errorf("product tag expression %s is neither v, v + 1 nor 0", tpl[2])
	}
	return ps, nil
}

// splitConjuncts flattens nested "and" into a list; nil yields nil.
func splitConjuncts(e expr.Expr) []expr.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(expr.Binary); ok && (b.Op == "and" || b.Op == "&&") {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

// labelDisjunction recognizes (x=='L1') or (x=='L2') or ... over a pattern
// label variable, returning the variable and the label set.
func labelDisjunction(e expr.Expr, shapes []patternShape) (string, []string, bool) {
	isLabelVar := func(name string) bool {
		for _, s := range shapes {
			if s.labelVar == name {
				return true
			}
		}
		return false
	}
	var walk func(e expr.Expr) (string, []string, bool)
	walk = func(e expr.Expr) (string, []string, bool) {
		b, ok := e.(expr.Binary)
		if !ok {
			return "", nil, false
		}
		switch b.Op {
		case "or", "||":
			lv1, l1, ok1 := walk(b.L)
			lv2, l2, ok2 := walk(b.R)
			if !ok1 || !ok2 || lv1 != lv2 {
				return "", nil, false
			}
			return lv1, append(l1, l2...), true
		case "==":
			v, vok := b.L.(expr.Var)
			lit, lok := b.R.(expr.Lit)
			if !vok || !lok || lit.Val.Kind() != value.KindString || !isLabelVar(v.Name) {
				return "", nil, false
			}
			return v.Name, []string{lit.Val.AsString()}, true
		}
		return "", nil, false
	}
	return walk(e)
}

// uniformProducts reports whether every product in ps forwards the identical
// value and tag behaviour, returning the labels. The second result encodes
// the tag: 0 unchanged, 1 incremented, -1 reset to 0.
func uniformProducts(ps []productShape) (expr.Expr, int64, []string, bool) {
	if len(ps) == 0 {
		return nil, 0, nil, true
	}
	tagCode := func(p productShape) int64 {
		if p.tagReset {
			return -1
		}
		return p.tagDelta
	}
	labels := []string{ps[0].label}
	for _, p := range ps[1:] {
		if !expr.Equal(p.valueExpr, ps[0].valueExpr) || tagCode(p) != tagCode(ps[0]) {
			return nil, 0, nil, false
		}
		labels = append(labels, p.label)
	}
	return ps[0].valueExpr, tagCode(ps[0]), labels, true
}

func classifySingleBranch(r *gamma.Reaction, spec *NodeSpec, shapes []patternShape, tagVar string, operative expr.Expr, products []productShape) (*NodeSpec, error) {
	fail := func(reason string) (*NodeSpec, error) {
		return nil, &ClassifyError{Reaction: r.Name, Reason: reason}
	}
	if operative != nil {
		return fail("single-branch reaction with an operative condition is not one vertex")
	}
	valueExpr, tagDelta, labels, ok := uniformProducts(products)
	if !ok {
		return fail("products disagree on value or tag")
	}
	if len(products) == 0 {
		// Unconditional consumers with no products are drains: vertices with
		// no out edges (the operands are consumed, nothing is emitted).
		// Algorithm 1 emits these for dead vertices — an unread loop-exit
		// settag, or an arithmetic node whose value is overwritten before
		// any use. Arity 1 reconstructs as an out-edge-less copy, arity 2 as
		// an out-edge-less addition; both fire and discard, which is the
		// drain's entire observable behaviour.
		switch len(shapes) {
		case 1:
			spec.Kind = dataflow.KindCopy
			spec.OutLabels = [][]string{nil}
			return spec, nil
		case 2:
			spec.Kind = dataflow.KindArith
			spec.Op = "+"
			spec.OutLabels = [][]string{nil}
			return spec, nil
		}
		return fail("unconditional reaction consuming 3+ elements and producing nothing is not one vertex")
	}
	spec.OutLabels = [][]string{labels}

	if tagDelta == 1 || tagDelta == -1 {
		v, ok := valueExpr.(expr.Var)
		if len(shapes) != 1 || !ok || v.Name != shapes[0].valueVar {
			return fail("tag-changing products must forward a single pattern's value (inctag/settag)")
		}
		if tagDelta == 1 {
			spec.Kind = dataflow.KindIncTag
		} else {
			spec.Kind = dataflow.KindSetTag
		}
		return spec, nil
	}
	switch ve := valueExpr.(type) {
	case expr.Var:
		if len(shapes) != 1 || ve.Name != shapes[0].valueVar {
			return fail("identity product must forward the single pattern's value (copy)")
		}
		spec.Kind = dataflow.KindCopy
		return spec, nil
	case expr.Unary:
		x, ok := ve.X.(expr.Var)
		if len(shapes) != 1 || !ok || x.Name != shapes[0].valueVar {
			return fail("unary product must apply to the single pattern's value")
		}
		spec.Kind = dataflow.KindUnaryOp
		spec.Op = ve.Op
		return spec, nil
	case expr.Binary:
		if !isArithOp(ve.Op) {
			return fail(fmt.Sprintf("operator %q in product is not arithmetic", ve.Op))
		}
		spec.Kind = dataflow.KindArith
		spec.Op = ve.Op
		return classifyBinaryOperands(r, spec, shapes, ve)
	}
	return fail("unsupported product value expression")
}

// classifyBinaryOperands fills in operand order and immediates for an Arith
// or Compare spec whose expression is ve, reordering InLabels so port 0 is
// the left operand.
func classifyBinaryOperands(r *gamma.Reaction, spec *NodeSpec, shapes []patternShape, ve expr.Binary) (*NodeSpec, error) {
	fail := func(reason string) (*NodeSpec, error) {
		return nil, &ClassifyError{Reaction: r.Name, Reason: reason}
	}
	varIndex := func(e expr.Expr) int {
		v, ok := e.(expr.Var)
		if !ok {
			return -1
		}
		for i, s := range shapes {
			if s.valueVar == v.Name {
				return i
			}
		}
		return -1
	}
	l, lok := ve.L.(expr.Lit)
	rl, rok := ve.R.(expr.Lit)
	switch {
	case lok && !rok:
		ri := varIndex(ve.R)
		if len(shapes) != 1 || ri != 0 {
			return fail("immediate-left operation must consume exactly its variable operand")
		}
		spec.Imm, spec.ImmLeft = l.Val, true
		return spec, nil
	case rok && !lok:
		li := varIndex(ve.L)
		if len(shapes) != 1 || li != 0 {
			return fail("immediate-right operation must consume exactly its variable operand")
		}
		spec.Imm = rl.Val
		return spec, nil
	case !lok && !rok:
		li, ri := varIndex(ve.L), varIndex(ve.R)
		if len(shapes) != 2 || li < 0 || ri < 0 || li == ri {
			return fail("binary operation must consume its two pattern values")
		}
		if li == 1 { // reorder ports so port 0 is the left operand
			spec.InLabels[0], spec.InLabels[1] = spec.InLabels[1], spec.InLabels[0]
		}
		return spec, nil
	}
	return fail("binary operation over two literals")
}

func classifyTwoBranch(r *gamma.Reaction, spec *NodeSpec, shapes []patternShape, tagVar string,
	cond1 expr.Expr, prods1 []productShape, cond2 expr.Expr, prods2 []productShape) (*NodeSpec, error) {
	fail := func(reason string) (*NodeSpec, error) {
		return nil, &ClassifyError{Reaction: r.Name, Reason: reason}
	}
	if cond1 == nil {
		return fail("first of two branches must carry the operative condition")
	}
	v1, d1, labels1, ok1 := uniformProducts(prods1)
	v2, d2, labels2, ok2 := uniformProducts(prods2)
	if !ok1 || !ok2 || d1 != 0 || d2 != 0 {
		return fail("two-branch products must be uniform with unchanged tag")
	}

	// Compare vertex: products are the control literals 1 and 0 and the
	// condition is a comparison (R14's shape).
	if isLit(v1, value.Int(1)) && (len(prods2) == 0 || isLit(v2, value.Int(0))) {
		cmp, ok := cond1.(expr.Binary)
		if ok && isCompareOp(cmp.Op) && complementOK(cond2, cmp) {
			if len(prods2) > 0 && !reflect.DeepEqual(sortedCopy(labels1), sortedCopy(labels2)) {
				return fail("comparison branches must produce the same labels")
			}
			spec.Kind = dataflow.KindCompare
			spec.Op = cmp.Op
			spec.OutLabels = [][]string{labels1}
			return classifyBinaryOperands(r, spec, shapes, cmp)
		}
	}

	// Steer vertex: two patterns, condition ctl == 1, both branches forward
	// the data value (or produce nothing).
	if len(shapes) == 2 {
		ctlIdx, ok := steerControl(cond1, shapes)
		if ok && complementSteerOK(cond2, shapes, ctlIdx) {
			dataIdx := 1 - ctlIdx
			forwards := func(ve expr.Expr, n int) bool {
				if ve == nil {
					return n == 0
				}
				v, ok := ve.(expr.Var)
				return ok && v.Name == shapes[dataIdx].valueVar
			}
			if forwards(v1, len(prods1)) && forwards(v2, len(prods2)) {
				spec.Kind = dataflow.KindSteer
				spec.OutLabels = [][]string{labels1, labels2}
				if ctlIdx == 0 { // reorder so port 0 is data, port 1 control
					spec.InLabels[0], spec.InLabels[1] = spec.InLabels[1], spec.InLabels[0]
				}
				return spec, nil
			}
		}
	}
	return fail("two-branch reaction is neither a comparison nor a steer")
}

// steerControl recognizes "ctl == 1" over a pattern value variable and
// returns that pattern's index.
func steerControl(cond expr.Expr, shapes []patternShape) (int, bool) {
	b, ok := cond.(expr.Binary)
	if !ok || b.Op != "==" {
		return 0, false
	}
	v, vok := b.L.(expr.Var)
	lit, lok := b.R.(expr.Lit)
	if !vok || !lok || lit.Val != value.Int(1) {
		return 0, false
	}
	for i, s := range shapes {
		if s.valueVar == v.Name {
			return i, true
		}
	}
	return 0, false
}

// complementSteerOK accepts an else branch (nil) or "ctl == 0".
func complementSteerOK(cond expr.Expr, shapes []patternShape, ctlIdx int) bool {
	if cond == nil {
		return true
	}
	b, ok := cond.(expr.Binary)
	if !ok || b.Op != "==" {
		return false
	}
	v, vok := b.L.(expr.Var)
	lit, lok := b.R.(expr.Lit)
	return vok && lok && v.Name == shapes[ctlIdx].valueVar && lit.Val == value.Int(0)
}

// complementOK accepts an else branch (nil) or the structural negation
// !(cmp) of the first branch's comparison.
func complementOK(cond expr.Expr, cmp expr.Binary) bool {
	if cond == nil {
		return true
	}
	u, ok := cond.(expr.Unary)
	return ok && u.Op == "!" && expr.Equal(u.X, cmp)
}

func isLit(e expr.Expr, v value.Value) bool {
	l, ok := e.(expr.Lit)
	return ok && l.Val == v
}

func isArithOp(op string) bool {
	switch op {
	case "+", "-", "*", "/", "%":
		return true
	}
	return false
}

func isCompareOp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func sortedCopy(s []string) []string {
	c := append([]string(nil), s...)
	sort.Strings(c)
	return c
}
