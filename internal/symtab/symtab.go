// Package symtab interns element labels into dense integer symbols.
//
// The Gamma runtime routes almost everything by label: multiset sharding, the
// per-label candidate indexes behind the reaction matcher, and the label →
// reaction subscription index of the incremental scheduler. Labels are program
// constants — a handful of short strings fixed at compile/convert time — but
// the seed engine re-hashed and re-compared their bytes on every probe and
// every commit. Interning turns each distinct label into a small dense Sym
// once, so the hot paths do integer map lookups and integer comparisons, and
// shard routing is a mask on the symbol itself.
//
// The table is process-global and append-only: symbols are never reused, so a
// Sym obtained anywhere stays valid for the life of the process, and two
// packages interning the same label always agree on its Sym. Interning is
// safe for concurrent use; the read path (SymOf, Name) is a shared-lock map
// hit and the hot runtime paths cache Syms at compile time so they do not
// touch the table at all.
package symtab

import "sync"

// Sym is a dense interned symbol. The zero Sym (None) is reserved: it names
// no label and is what lookups report for "absent".
type Sym uint32

// None is the zero Sym: not a label.
const None Sym = 0

var table = struct {
	sync.RWMutex
	syms  map[string]Sym
	names []string // names[sym] == label; index 0 is the reserved None
}{
	syms:  make(map[string]Sym),
	names: []string{""},
}

// Intern returns the symbol for name, allocating one on first use. The empty
// string interns like any other label (it is a legal, if odd, element label
// and must not collide with None).
func Intern(name string) Sym {
	table.RLock()
	s, ok := table.syms[name]
	table.RUnlock()
	if ok {
		return s
	}
	table.Lock()
	defer table.Unlock()
	if s, ok := table.syms[name]; ok {
		return s
	}
	s = Sym(len(table.names))
	table.syms[name] = s
	table.names = append(table.names, name)
	return s
}

// SymOf returns the symbol for name without allocating one, and whether it
// exists. A miss proves no tuple or pattern has interned the label, which the
// multiset's string-keyed query wrappers use to answer "no entries" without
// polluting the table.
func SymOf(name string) (Sym, bool) {
	table.RLock()
	s, ok := table.syms[name]
	table.RUnlock()
	return s, ok
}

// Name returns the label interned as s, or "" for None or an unknown symbol.
func Name(s Sym) string {
	table.RLock()
	defer table.RUnlock()
	if int(s) < len(table.names) {
		return table.names[s]
	}
	return ""
}

// Len reports the number of interned symbols (excluding None).
func Len() int {
	table.RLock()
	defer table.RUnlock()
	return len(table.names) - 1
}
