package symtab

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternStableAndDense(t *testing.T) {
	a := Intern("symtab-test-A")
	b := Intern("symtab-test-B")
	if a == None || b == None {
		t.Fatalf("Intern returned None: %d %d", a, b)
	}
	if a == b {
		t.Fatalf("distinct labels share a symbol: %d", a)
	}
	if got := Intern("symtab-test-A"); got != a {
		t.Fatalf("re-Intern = %d, want %d", got, a)
	}
	if got := Name(a); got != "symtab-test-A" {
		t.Fatalf("Name(%d) = %q", a, got)
	}
}

func TestSymOfDoesNotAllocate(t *testing.T) {
	if s, ok := SymOf("symtab-test-never-interned"); ok {
		t.Fatalf("SymOf on fresh label = %d, true", s)
	}
	before := Len()
	SymOf("symtab-test-never-interned-2")
	if Len() != before {
		t.Fatal("SymOf grew the table")
	}
}

func TestEmptyStringIsNotNone(t *testing.T) {
	if s := Intern(""); s == None {
		t.Fatal("empty label interned as None")
	}
}

func TestNameUnknown(t *testing.T) {
	if got := Name(None); got != "" {
		t.Fatalf("Name(None) = %q", got)
	}
	if got := Name(Sym(1 << 30)); got != "" {
		t.Fatalf("Name(out of range) = %q", got)
	}
}

func TestConcurrentIntern(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	results := make([][]Sym, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]Sym, 64)
			for i := range out {
				out[i] = Intern(fmt.Sprintf("symtab-conc-%d", i))
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d disagrees at %d: %d vs %d", w, i, results[w][i], results[0][i])
			}
		}
	}
}
