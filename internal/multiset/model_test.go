package multiset

import (
	"math/rand"
	"testing"
)

// TestModelBased drives the multiset with random operations and checks every
// observable against a trivial reference implementation (a map of counts).
func TestModelBased(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := New()
	ref := make(map[string]int) // key -> count
	refTotal := 0

	// A small universe so operations collide frequently.
	universe := make([]Tuple, 0, 24)
	for v := int64(0); v < 4; v++ {
		for _, label := range []string{"a", "b", "c"} {
			for tag := int64(0); tag < 2; tag++ {
				universe = append(universe, IntElem(v, label, tag))
			}
		}
	}

	for step := 0; step < 5000; step++ {
		tup := universe[rng.Intn(len(universe))]
		key := tup.Key()
		switch rng.Intn(5) {
		case 0, 1: // add
			m.Add(tup)
			ref[key]++
			refTotal++
		case 2: // addN
			n := rng.Intn(3) + 1
			m.AddN(tup, n)
			ref[key] += n
			refTotal += n
		case 3: // remove
			got := m.Remove(tup)
			want := ref[key] > 0
			if got != want {
				t.Fatalf("step %d: Remove(%s) = %v, ref %v", step, tup, got, want)
			}
			if want {
				ref[key]--
				refTotal--
				if ref[key] == 0 {
					delete(ref, key)
				}
			}
		case 4: // tryRemoveAll of a random batch
			batch := []Tuple{
				universe[rng.Intn(len(universe))],
				universe[rng.Intn(len(universe))],
			}
			need := map[string]int{}
			for _, b := range batch {
				need[b.Key()]++
			}
			want := true
			for k, n := range need {
				if ref[k] < n {
					want = false
				}
			}
			got := m.TryRemoveAll(batch)
			if got != want {
				t.Fatalf("step %d: TryRemoveAll = %v, ref %v", step, got, want)
			}
			if want {
				for k, n := range need {
					ref[k] -= n
					refTotal -= n
					if ref[k] == 0 {
						delete(ref, k)
					}
				}
			}
		}
		// Observables every few steps.
		if step%37 == 0 {
			if m.Len() != refTotal {
				t.Fatalf("step %d: Len = %d, ref %d", step, m.Len(), refTotal)
			}
			if m.Distinct() != len(ref) {
				t.Fatalf("step %d: Distinct = %d, ref %d", step, m.Distinct(), len(ref))
			}
			probe := universe[rng.Intn(len(universe))]
			if m.Count(probe) != ref[probe.Key()] {
				t.Fatalf("step %d: Count(%s) = %d, ref %d", step, probe, m.Count(probe), ref[probe.Key()])
			}
		}
	}
	// Final full comparison via snapshot.
	snap := m.Snapshot()
	total := 0
	for _, c := range snap {
		if ref[c.Tuple.Key()] != c.N {
			t.Fatalf("final: %s count %d, ref %d", c.Tuple, c.N, ref[c.Tuple.Key()])
		}
		total += c.N
	}
	if total != refTotal {
		t.Fatalf("final total %d, ref %d", total, refTotal)
	}
}

// TestModelBasedIndexes checks ByLabel/ByLabelTag against the reference
// after a random workload.
func TestModelBasedIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New()
	type entry struct {
		label string
		tag   int64
	}
	ref := make(map[string]int)
	mk := func() (Tuple, entry) {
		label := []string{"L0", "L1", "L2", "L3"}[rng.Intn(4)]
		tag := int64(rng.Intn(3))
		v := int64(rng.Intn(5))
		return IntElem(v, label, tag), entry{label, tag}
	}
	for i := 0; i < 2000; i++ {
		tup, _ := mk()
		if rng.Intn(3) == 0 {
			if m.Remove(tup) {
				ref[tup.Key()]--
			}
		} else {
			m.Add(tup)
			ref[tup.Key()]++
		}
	}
	for _, label := range []string{"L0", "L1", "L2", "L3"} {
		for tag := int64(0); tag < 3; tag++ {
			got := 0
			for _, c := range m.ByLabelTag(label, tag) {
				got += c.N
			}
			want := 0
			for v := int64(0); v < 5; v++ {
				want += ref[IntElem(v, label, tag).Key()]
			}
			if got != want {
				t.Errorf("ByLabelTag(%s,%d) total = %d, ref %d", label, tag, got, want)
			}
		}
		gotLabel := 0
		for _, c := range m.ByLabel(label) {
			gotLabel += c.N
		}
		wantLabel := 0
		for v := int64(0); v < 5; v++ {
			for tag := int64(0); tag < 3; tag++ {
				wantLabel += ref[IntElem(v, label, tag).Key()]
			}
		}
		if gotLabel != wantLabel {
			t.Errorf("ByLabel(%s) total = %d, ref %d", label, gotLabel, wantLabel)
		}
	}
}
