package multiset

import "repro/internal/symtab"

// Delta is one reaction firing's consume/produce sets — the unit of
// ApplyDeltas' batched commit. CKeys, when non-nil, must hold Key() of each
// consume tuple (the matcher passes the fingerprints cached on the entries it
// enumerated); a nil CKeys computes them at commit time.
type Delta struct {
	Consume []Tuple
	CKeys   []string
	Produce []Tuple
}

// ApplyDeltas applies k independent firings as one batched commit: a single
// lock acquisition over the union of involved shards, with all-or-nothing
// claim semantics per firing. Deltas are processed in order, each claim
// checked against the multiset as left by the deltas applied before it; a
// failed claim skips exactly that delta (a concurrent worker consumed one of
// its molecules between match and commit). applied, when non-nil, must have
// len(ds) entries and records per-delta success.
//
// The commit is observationally identical to calling ApplyDelta once per
// delta in order — same deltas succeed, same final multiset, and syms
// collects the same deduplicated produce label symbols of the applied deltas
// (the 500-seed property test in batch_test.go pins the equivalence). It
// returns the number of deltas applied and the extended syms.
func (m *Multiset) ApplyDeltas(ds []Delta, applied []bool, syms []symtab.Sym) (int, []symtab.Sym) {
	return m.applyDeltas(ds, applied, nil, syms)
}

// ApplyDeltasSeq is ApplyDeltas that additionally records each applied
// delta's commit sequence number into seqs (which must have len(ds) entries;
// skipped deltas leave their slot untouched). Numbers are drawn in delta
// order while the shard locks are held, so across concurrent batches they
// form a valid sequential linearization of the parallel execution — the
// property the replay recorder sorts on.
func (m *Multiset) ApplyDeltasSeq(ds []Delta, applied []bool, seqs []uint64, syms []symtab.Sym) (int, []symtab.Sym) {
	return m.applyDeltas(ds, applied, seqs, syms)
}

func (m *Multiset) applyDeltas(ds []Delta, applied []bool, seqs []uint64, syms []symtab.Sym) (int, []symtab.Sym) {
	if len(ds) == 0 {
		return 0, syms
	}
	d := deltaPool.Get().(*deltaScratch)
	defer deltaPool.Put(d)
	d.reset()
	var involved [shardCount]bool
	for i := range ds {
		d.stageConsume(ds[i].Consume, ds[i].CKeys, &involved)
		d.stageProduce(ds[i].Produce, &involved)
	}
	m.lockShards(&involved)
	n := 0
	var size int64
	cs, ps := 0, 0
	for i := range ds {
		ce := cs + len(ds[i].Consume)
		pe := ps + len(ds[i].Produce)
		ok := m.claimRangeLocked(cs, ce, d)
		if ok {
			if seqs != nil {
				seqs[i] = m.commitSeq.Add(1)
			}
			m.applyRangeLocked(ds[i].Produce, d, cs, ce, ps, pe)
			size += int64(len(ds[i].Produce)) - int64(len(ds[i].Consume))
			n++
			syms = appendSymsDedup(syms, d.psyms[ps:pe])
		}
		if applied != nil {
			applied[i] = ok
		}
		cs, ps = ce, pe
	}
	m.unlockShards(&involved)
	if size != 0 {
		m.addSize(size)
	}
	return n, syms
}

// View is a caller-owned read session over a static set of shards: the
// parallel matcher's way to enumerate candidates zero-copy while tolerating
// concurrent commits to other shards. The seed parallel matcher snapshotted
// and shuffled the whole index per probe — O(index) allocation and copying
// per probe; a View holds the shard read locks across the probe (or a whole
// multi-firing batch of probes) and walks the live chunked indexes in
// rotated order instead, which decorrelates concurrent searchers without a
// shuffle. Writers to the viewed shards block for the duration, which is
// exactly the window an optimistic matcher wants: candidates cannot vanish
// mid-enumeration, staleness is confined to the commit and caught by its
// claim.
//
// The shard set is fixed at LockView from the label symbols the caller's
// patterns can touch (generic patterns need all=true); locks are taken in
// shard index order, the same deadlock-avoidance order every multi-shard
// writer uses. A View must be Unlocked before the commit's write locks are
// taken. The zero View is ready for LockView and reusable after Unlock.
type View struct {
	m        *Multiset
	involved [shardCount]bool
	locked   bool
}

// LockView read-locks the shards that can hold tuples labeled with any of
// syms, or every shard when all is set.
func (m *Multiset) LockView(v *View, syms []symtab.Sym, all bool) {
	if v.locked {
		panic("multiset: LockView on an already locked View")
	}
	for i := range v.involved {
		v.involved[i] = all
	}
	if !all {
		for _, sym := range syms {
			v.involved[uint32(sym)&(shardCount-1)] = true
		}
	}
	v.m = m
	for i := range m.shards {
		if v.involved[i] {
			m.shards[i].mu.RLock()
		}
	}
	v.locked = true
}

// Unlock releases the view's read locks. Idempotent, so panic-recovery paths
// can call it unconditionally.
func (v *View) Unlock() {
	if !v.locked {
		return
	}
	v.locked = false
	for i := range v.m.shards {
		if v.involved[i] {
			v.m.shards[i].mu.RUnlock()
		}
	}
}

// EachSym enumerates the distinct tuples labeled sym — which must route to a
// viewed shard — starting at a rotated position derived from rot and
// wrapping around, so the walk is exhaustive. Each candidate carries its
// multiplicity and cached fingerprint.
func (v *View) EachSym(sym symtab.Sym, rot uint64, fn func(t Tuple, n int, key string) bool) {
	s := v.shardChecked(uint32(sym) & (shardCount - 1))
	if l := s.bySym[sym]; l != nil {
		l.eachRot(rot, func(e *entry) bool { return fn(e.tuple, e.count, e.key) })
	}
}

// EachSymTag is EachSym over the (label symbol, tag) index.
func (v *View) EachSymTag(sym symtab.Sym, tag int64, rot uint64, fn func(t Tuple, n int, key string) bool) {
	s := v.shardChecked(uint32(sym) & (shardCount - 1))
	if l := s.bySymTag[symTag{sym, tag}]; l != nil {
		l.eachRot(rot, func(e *entry) bool { return fn(e.tuple, e.count, e.key) })
	}
}

// EachAll enumerates every distinct tuple of the multiset (the view must
// hold all shards), rotating both the shard order and the position within
// each shard.
func (v *View) EachAll(rot uint64, fn func(t Tuple, n int, key string) bool) {
	start := int(uint32(rot) % shardCount)
	stop := false
	for i := 0; i < shardCount && !stop; i++ {
		s := v.shardChecked(uint32((start + i) & (shardCount - 1)))
		s.sorted.eachRot(rot, func(e *entry) bool {
			stop = !fn(e.tuple, e.count, e.key)
			return !stop
		})
	}
}

// shardChecked returns the shard at index si, panicking when the view does
// not hold its lock — a misrouted enumeration would otherwise race writers
// silently.
func (v *View) shardChecked(si uint32) *shard {
	if !v.locked || !v.involved[si] {
		panic("multiset: View enumeration outside the locked shard set")
	}
	return &v.m.shards[si]
}
