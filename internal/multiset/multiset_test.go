package multiset

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestTupleAccessors(t *testing.T) {
	e := IntElem(7, "A1", 2)
	if e.Value() != value.Int(7) {
		t.Errorf("Value = %s", e.Value())
	}
	if l, ok := e.Label(); !ok || l != "A1" {
		t.Errorf("Label = %q, %v", l, ok)
	}
	if tag, ok := e.Tag(); !ok || tag != 2 {
		t.Errorf("Tag = %d, %v", tag, ok)
	}
	p := Pair(value.Int(1), "B2")
	if _, ok := p.Tag(); ok {
		t.Error("pair should have no tag")
	}
	one := New1(value.Int(9))
	if _, ok := one.Label(); ok {
		t.Error("1-tuple should have no label")
	}
	if (Tuple{}).Value().IsValid() {
		t.Error("empty tuple Value should be invalid")
	}
	// Non-string second field is not a label; non-int third field is not a tag.
	odd := Tuple{value.Int(1), value.Int(2), value.Str("x")}
	if _, ok := odd.Label(); ok {
		t.Error("int second field is not a label")
	}
	odd2 := Tuple{value.Int(1), value.Str("L"), value.Str("x")}
	if _, ok := odd2.Tag(); ok {
		t.Error("string third field is not a tag")
	}
}

func TestTupleEqualCloneKey(t *testing.T) {
	a := IntElem(1, "A1", 0)
	b := IntElem(1, "A1", 0)
	c := IntElem(1, "A1", 1)
	if !a.Equal(b) || a.Equal(c) || a.Equal(a[:2]) {
		t.Error("Equal misbehaves")
	}
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Error("Key misbehaves")
	}
	// Int(2) vs Float(2) must produce distinct keys.
	ti := Tuple{value.Int(2)}
	tf := Tuple{value.Float(2)}
	if ti.Key() == tf.Key() {
		t.Error("Int(2) and Float(2) keys collide")
	}
	cl := a.Clone()
	cl[0] = value.Int(99)
	if a[0] != value.Int(1) {
		t.Error("Clone is not independent")
	}
}

func TestTupleString(t *testing.T) {
	e := IntElem(1, "A1", 0)
	if got := e.String(); got != "[1, 'A1', 0]" {
		t.Errorf("String = %q", got)
	}
}

func TestTupleCompare(t *testing.T) {
	a := IntElem(1, "A1", 0)
	b := IntElem(1, "A2", 0)
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("Compare ordering wrong")
	}
	short := Tuple{value.Int(1)}
	if short.Compare(a) >= 0 || a.Compare(short) <= 0 {
		t.Error("shorter tuple should order first")
	}
	// Kind ordering: Int < Float in Kind enumeration.
	ti, tf := Tuple{value.Int(2)}, Tuple{value.Float(2)}
	if ti.Compare(tf) >= 0 {
		t.Error("int should order before float")
	}
}

func TestParseTuple(t *testing.T) {
	got, err := ParseTuple("[1, 'A1', 0]")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(IntElem(1, "A1", 0)) {
		t.Errorf("ParseTuple = %s", got)
	}
	// String containing a comma must not split.
	got2, err := ParseTuple("['a,b', 2]")
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(Tuple{value.Str("a,b"), value.Int(2)}) {
		t.Errorf("ParseTuple comma-in-string = %s", got2)
	}
	for _, bad := range []string{"", "[]", "1, 2", "[1, @]", "[1"} {
		if _, err := ParseTuple(bad); err == nil {
			t.Errorf("ParseTuple(%q) should error", bad)
		}
	}
}

func TestAddRemoveCount(t *testing.T) {
	m := New()
	e := IntElem(1, "A1", 0)
	if m.Contains(e) || m.Len() != 0 {
		t.Error("new multiset should be empty")
	}
	m.Add(e)
	m.AddN(e, 2)
	if m.Count(e) != 3 || m.Len() != 3 || m.Distinct() != 1 {
		t.Errorf("after adds: count=%d len=%d distinct=%d", m.Count(e), m.Len(), m.Distinct())
	}
	if !m.Remove(e) || m.Count(e) != 2 {
		t.Error("Remove failed")
	}
	m.Remove(e)
	m.Remove(e)
	if m.Remove(e) {
		t.Error("Remove on absent element should fail")
	}
	if m.Len() != 0 || m.Distinct() != 0 {
		t.Errorf("should be empty: len=%d distinct=%d", m.Len(), m.Distinct())
	}
}

func TestAddNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddN(t, 0) should panic")
		}
	}()
	New().AddN(IntElem(1, "A", 0), 0)
}

func TestNewWithInitialAndAddAll(t *testing.T) {
	m := New(IntElem(1, "A1", 0), IntElem(5, "B1", 0))
	m.AddAll([]Tuple{IntElem(3, "C1", 0), IntElem(2, "D1", 0)})
	if m.Len() != 4 {
		t.Errorf("len = %d", m.Len())
	}
	if m.String() != "{[1, 'A1', 0], [2, 'D1', 0], [3, 'C1', 0], [5, 'B1', 0]}" {
		t.Errorf("String = %s", m)
	}
}

func TestByLabelAndByLabelTag(t *testing.T) {
	m := New(
		IntElem(1, "A1", 0), IntElem(2, "A1", 1), IntElem(3, "B1", 0),
	)
	m.Add(IntElem(1, "A1", 0)) // multiplicity 2

	a1 := m.ByLabel("A1")
	total := 0
	for _, c := range a1 {
		total += c.N
	}
	if len(a1) != 2 || total != 3 {
		t.Errorf("ByLabel(A1): distinct=%d total=%d", len(a1), total)
	}
	tagged := m.ByLabelTag("A1", 0)
	if len(tagged) != 1 || tagged[0].N != 2 || !tagged[0].Tuple.Equal(IntElem(1, "A1", 0)) {
		t.Errorf("ByLabelTag(A1,0) = %v", tagged)
	}
	if got := m.ByLabelTag("A1", 5); len(got) != 0 {
		t.Errorf("ByLabelTag(A1,5) = %v", got)
	}
	if got := m.ByLabel("ZZ"); len(got) != 0 {
		t.Errorf("ByLabel(ZZ) = %v", got)
	}
	// Index maintenance after removal.
	m.Remove(IntElem(1, "A1", 0))
	m.Remove(IntElem(1, "A1", 0))
	if got := m.ByLabelTag("A1", 0); len(got) != 0 {
		t.Errorf("index not cleaned after removal: %v", got)
	}
}

func TestTryRemoveAll(t *testing.T) {
	m := New(IntElem(1, "A1", 0), IntElem(5, "B1", 0))
	ok := m.TryRemoveAll([]Tuple{IntElem(1, "A1", 0), IntElem(5, "B1", 0)})
	if !ok || m.Len() != 0 {
		t.Errorf("TryRemoveAll failed: ok=%v len=%d", ok, m.Len())
	}
	// All-or-nothing on partial availability.
	m = New(IntElem(1, "A1", 0))
	ok = m.TryRemoveAll([]Tuple{IntElem(1, "A1", 0), IntElem(5, "B1", 0)})
	if ok || m.Len() != 1 {
		t.Errorf("partial TryRemoveAll should fail atomically: ok=%v len=%d", ok, m.Len())
	}
	// Duplicates need sufficient multiplicity.
	m = New(IntElem(1, "A1", 0))
	dup := []Tuple{IntElem(1, "A1", 0), IntElem(1, "A1", 0)}
	if m.TryRemoveAll(dup) {
		t.Error("should fail: needs multiplicity 2")
	}
	m.Add(IntElem(1, "A1", 0))
	if !m.TryRemoveAll(dup) || m.Len() != 0 {
		t.Error("should succeed with multiplicity 2")
	}
	if !m.TryRemoveAll(nil) {
		t.Error("empty TryRemoveAll should succeed")
	}
}

func TestSnapshotExpandCloneEqual(t *testing.T) {
	m := New(IntElem(1, "A1", 0), IntElem(5, "B1", 0))
	m.Add(IntElem(1, "A1", 0))
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].N != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	exp := m.Expand()
	if len(exp) != 3 {
		t.Errorf("expand = %v", exp)
	}
	c := m.Clone()
	if !c.Equal(m) {
		t.Error("clone should equal original")
	}
	c.Add(IntElem(9, "Z", 0))
	if c.Equal(m) || m.Equal(c) {
		t.Error("clone should now differ")
	}
	d := m.Clone()
	d.Remove(IntElem(1, "A1", 0))
	d.Add(IntElem(5, "B1", 0))
	if m.Equal(d) {
		t.Error("same Len different content should differ")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		m.Add(IntElem(int64(i), fmt.Sprintf("L%d", i), 0))
	}
	seen := 0
	m.ForEach(func(Tuple, int) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Errorf("early stop saw %d", seen)
	}
}

func TestParseMultiset(t *testing.T) {
	m, err := Parse("{[1, 'A1', 0], [5, 'B1', 0], [1, 'A1', 0]}")
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 || m.Count(IntElem(1, "A1", 0)) != 2 {
		t.Errorf("parsed %s", m)
	}
	empty, err := Parse("{}")
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty parse: %v %v", empty, err)
	}
	for _, bad := range []string{"", "[1]", "{[1],}", "{[}", "{[1, @]}"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should error", bad)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	m := New(IntElem(1, "A1", 0), IntElem(5, "B1", 0), Pair(value.Str("s"), "C"))
	m.Add(IntElem(1, "A1", 0))
	got, err := Parse(m.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Errorf("round trip: %s vs %s", got, m)
	}
}

func TestConcurrentAddRemove(t *testing.T) {
	m := New()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				e := IntElem(int64(i%13), fmt.Sprintf("L%d", i%7), int64(w))
				m.Add(e)
				if i%2 == 0 {
					m.Remove(e)
				}
			}
		}(w)
	}
	wg.Wait()
	want := workers * perWorker / 2
	if m.Len() != want {
		t.Errorf("len = %d, want %d", m.Len(), want)
	}
}

func TestConcurrentTryRemoveAllClaimsDisjoint(t *testing.T) {
	// N workers race to claim the same pair; exactly one must win.
	for trial := 0; trial < 20; trial++ {
		m := New(IntElem(1, "A1", 0), IntElem(5, "B1", 0))
		var wg sync.WaitGroup
		wins := make(chan bool, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if m.TryRemoveAll([]Tuple{IntElem(1, "A1", 0), IntElem(5, "B1", 0)}) {
					wins <- true
				}
			}()
		}
		wg.Wait()
		close(wins)
		n := 0
		for range wins {
			n++
		}
		if n != 1 {
			t.Fatalf("trial %d: %d winners, want 1", trial, n)
		}
		if m.Len() != 0 {
			t.Fatalf("trial %d: len = %d", trial, m.Len())
		}
	}
}

// Property: Add then Remove leaves the multiset unchanged.
func TestQuickAddRemoveIdentity(t *testing.T) {
	f := func(v int64, label string, tag int64, n uint8) bool {
		m := New()
		count := int(n%5) + 1
		e := IntElem(v, label, tag)
		m.AddN(e, count)
		for i := 0; i < count; i++ {
			if !m.Remove(e) {
				return false
			}
		}
		return m.Len() == 0 && m.Distinct() == 0 && !m.Contains(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String/Parse round-trips arbitrary integer-element multisets.
func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(vals []int8) bool {
		m := New()
		for i, v := range vals {
			m.Add(IntElem(int64(v), fmt.Sprintf("L%d", i%4), int64(i%3)))
		}
		got, err := Parse(m.String())
		return err == nil && got.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
