package multiset

import (
	"unsafe"

	"repro/internal/value"
)

// shardArena amortizes the three allocations that linking a distinct tuple
// into a shard otherwise costs — the entry struct, the key string, and the
// defensive copy of the tuple cells — by carving each from append-only
// chunks. A chunk region is written exactly once, when carved, and never
// again: later carves append strictly past it and a full chunk is replaced
// by a fresh one rather than grown (growing would relocate live carves). That
// write-once discipline is what makes the unsafe.String view over the key
// bytes sound, and it preserves the shard contract that tuple backings and
// key strings handed to searchers, memo keys and traces are never reused.
//
// Chunk memory is reclaimed by the GC once every entry, key and tuple carved
// from it dies; a long-lived carve pins at most one chunk of each kind.
// All methods require the owning shard's write lock.
type shardArena struct {
	entries []entry
	keys    []byte
	cells   []value.Value
}

const (
	entryChunk = 256
	keyChunk   = 4096
	cellChunk  = 1024
)

// newEntry carves a zeroed entry, switching to a fresh chunk when full.
func (a *shardArena) newEntry() *entry {
	if len(a.entries) == cap(a.entries) {
		a.entries = make([]entry, 0, entryChunk)
	}
	a.entries = a.entries[:len(a.entries)+1]
	return &a.entries[len(a.entries)-1]
}

// internKey copies the fingerprint bytes into the key chunk and returns a
// string viewing them. Oversized keys get their own allocation so one huge
// key cannot waste most of a chunk.
func (a *shardArena) internKey(kb []byte) string {
	n := len(kb)
	if n == 0 {
		return ""
	}
	if n > keyChunk/4 {
		return string(kb)
	}
	if cap(a.keys)-len(a.keys) < n {
		a.keys = make([]byte, 0, keyChunk)
	}
	off := len(a.keys)
	a.keys = append(a.keys, kb...)
	return unsafe.String(&a.keys[off], n)
}

// cloneTuple copies t's cells into the cell chunk and returns a capacity-
// clamped tuple over them, equivalent to t.Clone() without the per-tuple
// allocation.
func (a *shardArena) cloneTuple(t Tuple) Tuple {
	n := len(t)
	if n == 0 {
		return nil
	}
	if n > cellChunk/4 {
		return t.Clone()
	}
	if cap(a.cells)-len(a.cells) < n {
		a.cells = make([]value.Value, 0, cellChunk)
	}
	off := len(a.cells)
	a.cells = append(a.cells, t...)
	return Tuple(a.cells[off : off+n : off+n])
}
