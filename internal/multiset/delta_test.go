package multiset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/symtab"
	"repro/internal/value"
)

// TestAddAllLabelDeltas checks the touched-label report driving the
// incremental scheduler: one entry per distinct label, NoLabel for tuples
// with no string in the label position.
func TestAddAllLabelDeltas(t *testing.T) {
	m := New()
	labels := m.AddAll([]Tuple{
		Pair(value.Int(1), "A"),
		Pair(value.Int(2), "A"),
		Pair(value.Int(3), "B"),
		New1(value.Int(4)),           // unlabeled: 1-tuple
		{value.Int(5), value.Int(6)}, // unlabeled: non-string field 1
		Pair(value.Str("x"), "A"),    // same label, different kind
	})
	sort.Strings(labels)
	want := []string{NoLabel, "A", "B"}
	sort.Strings(want)
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("AddAll labels = %q, want %q", labels, want)
	}
	if m.Len() != 6 {
		t.Fatalf("Len = %d, want 6", m.Len())
	}
	if got := m.AddAll(nil); len(got) != 0 {
		t.Fatalf("AddAll(nil) = %q, want empty", got)
	}
}

// TestByLabelKeyOrdered checks that the maintained per-label index comes back
// in ascending key order without any per-call sort — the property the
// deterministic matcher relies on.
func TestByLabelKeyOrdered(t *testing.T) {
	m := New()
	for _, v := range []int64{9, 3, 7, 1, 5, 3} {
		m.Add(Pair(value.Int(v), "L"))
	}
	got := m.ByLabel("L")
	for i := 1; i < len(got); i++ {
		if got[i-1].Tuple.Key() >= got[i].Tuple.Key() {
			t.Fatalf("ByLabel not strictly key-ascending at %d: %v then %v", i, got[i-1].Tuple, got[i].Tuple)
		}
	}
	// 5 distinct tuples, one with count 2.
	if len(got) != 5 {
		t.Fatalf("distinct = %d, want 5", len(got))
	}
	if m.Count(Pair(value.Int(3), "L")) != 2 {
		t.Fatal("count of duplicate lost")
	}
}

// TestIterSortedAgreesWithSnapshot checks the zero-copy merged iteration
// against the Compare-sorted Snapshot: same tuples, same order (Key order and
// Compare order agree), same counts.
func TestIterSortedAgreesWithSnapshot(t *testing.T) {
	m := New()
	for i := 0; i < 200; i++ {
		m.Add(New1(value.Int(int64(i * 37 % 101))))
		if i%3 == 0 {
			m.Add(Pair(value.Int(int64(i)), "L"))
		}
		if i%7 == 0 {
			m.Add(New1(value.Str("s")))
		}
	}
	snap := m.Snapshot()
	i := 0
	m.IterSorted(func(tp Tuple, n int) bool {
		if i >= len(snap) {
			t.Fatalf("IterSorted yields more than %d distinct tuples", len(snap))
		}
		if !tp.Equal(snap[i].Tuple) || n != snap[i].N {
			t.Fatalf("IterSorted[%d] = (%v,%d), Snapshot has (%v,%d)", i, tp, n, snap[i].Tuple, snap[i].N)
		}
		i++
		return true
	})
	if i != len(snap) {
		t.Fatalf("IterSorted yielded %d distinct tuples, Snapshot has %d", i, len(snap))
	}
}

// TestIterAllRotExhaustive checks that the rotated whole-set walk visits
// exactly IterAll's element set — every distinct tuple once, with the same
// count and cached key — for many rotations, that a fixed rotation yields a
// fixed order (determinism), and that early exit works.
func TestIterAllRotExhaustive(t *testing.T) {
	m := New()
	for i := 0; i < 150; i++ {
		m.Add(New1(value.Int(int64(i * 53 % 97))))
		if i%4 == 0 {
			m.Add(Pair(value.Int(int64(i)), "L"))
		}
	}
	want := map[string]int{}
	m.IterAll(func(tp Tuple, n int, key string) bool {
		want[key] = n
		return true
	})
	for _, rot := range []uint64{0, 1, 31, 32, 1 << 40, ^uint64(0), detRotTest(151)} {
		got := map[string]int{}
		var order1, order2 []string
		m.IterAllRot(rot, func(tp Tuple, n int, key string) bool {
			if tp.Key() != key {
				t.Fatalf("rot %d: cached key %q != Key() %q", rot, key, tp.Key())
			}
			got[key] = n
			order1 = append(order1, key)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("rot %d: visited %d distinct tuples, want %d", rot, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("rot %d: key %q count %d, want %d", rot, k, got[k], n)
			}
		}
		m.IterAllRot(rot, func(tp Tuple, n int, key string) bool {
			order2 = append(order2, key)
			return true
		})
		for i := range order1 {
			if order1[i] != order2[i] {
				t.Fatalf("rot %d: order not deterministic at %d: %q vs %q", rot, i, order1[i], order2[i])
			}
		}
	}
	calls := 0
	m.IterAllRot(7, func(Tuple, int, string) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("IterAllRot early exit after %d calls, want 3", calls)
	}
}

// detRotTest is a splitmix64 round, the same mixing the gamma matcher uses to
// derive rotations from multiset sizes; here it just provides one more
// arbitrary rotation value.
func detRotTest(n int) uint64 {
	z := uint64(n) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestIterEarlyExit checks that returning false stops all three iterators.
func TestIterEarlyExit(t *testing.T) {
	m := New()
	for i := int64(0); i < 50; i++ {
		m.Add(IntElem(i, "L", i%4))
	}
	for name, iter := range map[string]func(fn func(Tuple, int) bool){
		"IterSorted":   m.IterSorted,
		"IterLabel":    func(fn func(Tuple, int) bool) { m.IterLabel("L", fn) },
		"IterLabelTag": func(fn func(Tuple, int) bool) { m.IterLabelTag("L", 2, fn) },
	} {
		calls := 0
		iter(func(Tuple, int) bool {
			calls++
			return calls < 3
		})
		if calls != 3 {
			t.Fatalf("%s: early exit after %d calls, want 3", name, calls)
		}
	}
}

// TestIterLabelTagMatchesByLabelTag checks the zero-copy (label, tag) walk
// yields exactly the snapshot the randomized path sees.
func TestIterLabelTagMatchesByLabelTag(t *testing.T) {
	m := New()
	for i := int64(0); i < 40; i++ {
		m.Add(IntElem(i, "L", i%5))
		m.Add(IntElem(i, "R", i%5))
	}
	want := m.ByLabelTag("L", 3)
	var got []Counted
	m.IterLabelTag("L", 3, func(tp Tuple, n int) bool {
		got = append(got, Counted{Tuple: tp, N: n})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("IterLabelTag yields %d, ByLabelTag %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Tuple.Equal(want[i].Tuple) || got[i].N != want[i].N {
			t.Fatalf("at %d: iter (%v,%d) vs snapshot (%v,%d)", i, got[i].Tuple, got[i].N, want[i].Tuple, want[i].N)
		}
	}
}

// TestIndexesAfterRemoval checks sorted-index maintenance through interleaved
// add/remove churn: the label index never resurrects removed tuples and stays
// ordered.
func TestIndexesAfterRemoval(t *testing.T) {
	m := New()
	for i := int64(0); i < 30; i++ {
		m.Add(Pair(value.Int(i), "L"))
	}
	for i := int64(0); i < 30; i += 2 {
		if !m.Remove(Pair(value.Int(i), "L")) {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	got := m.ByLabel("L")
	if len(got) != 15 {
		t.Fatalf("distinct after removal = %d, want 15", len(got))
	}
	for _, c := range got {
		if c.Tuple[0].AsInt()%2 == 0 {
			t.Fatalf("removed tuple %v still indexed", c.Tuple)
		}
	}
	seen := 0
	m.IterSorted(func(Tuple, int) bool { seen++; return true })
	if seen != 15 {
		t.Fatalf("IterSorted sees %d tuples after removal, want 15", seen)
	}
}

func TestApplyDeltaCommit(t *testing.T) {
	m := New(
		IntElem(1, "A", 0),
		IntElem(2, "A", 0),
		IntElem(9, "B", 1),
	)
	consume := []Tuple{IntElem(1, "A", 0), IntElem(2, "A", 0)}
	produce := []Tuple{IntElem(3, "C", 0), IntElem(4, "C", 1), {value.Int(7)}}
	ok, syms := m.ApplyDelta(consume, nil, produce, nil)
	if !ok {
		t.Fatal("commit failed on available molecules")
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
	for _, gone := range consume {
		if m.Contains(gone) {
			t.Fatalf("consumed %s still present", gone)
		}
	}
	for _, added := range produce {
		if m.Count(added) != 1 {
			t.Fatalf("produced %s count = %d", added, m.Count(added))
		}
	}
	cSym, _ := symtab.SymOf("C")
	want := map[symtab.Sym]bool{cSym: true, NoLabelSym: true}
	if len(syms) != 2 || !want[syms[0]] || !want[syms[1]] {
		t.Fatalf("delta syms = %v, want {C, NoLabelSym}", syms)
	}
}

func TestApplyDeltaFailedClaimUntouched(t *testing.T) {
	m := New(IntElem(1, "A", 0))
	before := m.String()
	prior := []symtab.Sym{symtab.Intern("marker")}
	ok, syms := m.ApplyDelta(
		[]Tuple{IntElem(1, "A", 0), IntElem(2, "A", 0)}, nil,
		[]Tuple{IntElem(3, "C", 0)}, prior)
	if ok {
		t.Fatal("claim succeeded despite missing molecule")
	}
	if m.String() != before {
		t.Fatalf("failed claim mutated the multiset: %s -> %s", before, m.String())
	}
	if len(syms) != 1 || syms[0] != prior[0] {
		t.Fatalf("failed claim changed syms: %v", syms)
	}
}

func TestApplyDeltaDuplicateConsume(t *testing.T) {
	m := New(IntElem(1, "A", 0))
	dup := []Tuple{IntElem(1, "A", 0), IntElem(1, "A", 0)}
	if ok, _ := m.ApplyDelta(dup, nil, nil, nil); ok {
		t.Fatal("claimed two occurrences of a multiplicity-1 tuple")
	}
	m.Add(IntElem(1, "A", 0))
	if ok, _ := m.ApplyDelta(dup, nil, nil, nil); !ok {
		t.Fatal("failed to claim two occurrences of a multiplicity-2 tuple")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after consuming both, want 0", m.Len())
	}
}

// TestApplyDeltaMatchesTwoPhase is the commit differential: on random deltas,
// the batched single-lock commit must succeed exactly when the seed engine's
// TryRemoveAll+AddAll two-phase commit succeeds, and leave the same multiset.
func TestApplyDeltaMatchesTwoPhase(t *testing.T) {
	labels := []string{"A", "B", "C"}
	randTuple := func(rng *rand.Rand) Tuple {
		tp := Tuple{value.Int(int64(rng.Intn(4)))}
		if rng.Intn(4) > 0 {
			tp = append(tp, value.Str(labels[rng.Intn(len(labels))]))
			if rng.Intn(2) == 0 {
				tp = append(tp, value.Int(int64(rng.Intn(3))))
			}
		}
		return tp
	}
	for seed := 0; seed < 500; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		batched := New()
		twoPhase := New()
		for i, n := 0, rng.Intn(8); i < n; i++ {
			tp := randTuple(rng)
			k := 1 + rng.Intn(2)
			batched.AddN(tp, k)
			twoPhase.AddN(tp, k)
		}
		for step := 0; step < 6; step++ {
			var consume, produce []Tuple
			for i, n := 0, rng.Intn(3); i < n; i++ {
				consume = append(consume, randTuple(rng))
			}
			for i, n := 0, rng.Intn(3); i < n; i++ {
				produce = append(produce, randTuple(rng))
			}
			okB, _ := batched.ApplyDelta(consume, nil, produce, nil)
			okT := twoPhase.TryRemoveAll(consume)
			if okT {
				twoPhase.AddAll(produce)
			}
			if okB != okT {
				t.Fatalf("seed %d step %d: batched=%v twoPhase=%v for consume=%v", seed, step, okB, okT, consume)
			}
			if okB && !batched.Equal(twoPhase) {
				t.Fatalf("seed %d step %d: diverged:\n batched:  %s\n twoPhase: %s", seed, step, batched, twoPhase)
			}
		}
		if !batched.Equal(twoPhase) {
			t.Fatalf("seed %d: final states diverged:\n batched:  %s\n twoPhase: %s", seed, batched, twoPhase)
		}
	}
}

func TestApplyDeltaKeyedMatchesUnkeyed(t *testing.T) {
	consume := []Tuple{IntElem(1, "A", 0), IntElem(2, "B", 1)}
	keys := []string{consume[0].Key(), consume[1].Key()}
	produce := []Tuple{IntElem(3, "C", 0)}
	a := New(consume[0], consume[1])
	b := New(consume[0], consume[1])
	okA, symsA := a.ApplyDelta(consume, keys, produce, nil)
	okB, symsB := b.ApplyDelta(consume, nil, produce, nil)
	if okA != okB || !a.Equal(b) {
		t.Fatalf("keyed/unkeyed diverged: ok %v/%v, %s vs %s", okA, okB, a, b)
	}
	if len(symsA) != len(symsB) || symsA[0] != symsB[0] {
		t.Fatalf("syms diverged: %v vs %v", symsA, symsB)
	}
}

// TestIterKeysMatchTupleKey pins the cached-fingerprint contract: every key a
// maintained index hands to its callback equals Tuple.Key() recomputed.
func TestIterKeysMatchTupleKey(t *testing.T) {
	m := New(
		IntElem(1, "A", 0),
		IntElem(2, "A", 5),
		IntElem(3, "B", 0),
		Tuple{value.Int(4)},
	)
	check := func(where string, tp Tuple, key string) {
		if key != tp.Key() {
			t.Errorf("%s: cached key %q != Key() %q for %s", where, key, tp.Key(), tp)
		}
	}
	aSym, _ := symtab.SymOf("A")
	m.IterSym(aSym, func(tp Tuple, n int, key string) bool { check("IterSym", tp, key); return true })
	m.IterSymTag(aSym, 5, func(tp Tuple, n int, key string) bool { check("IterSymTag", tp, key); return true })
	seen := 0
	m.IterAll(func(tp Tuple, n int, key string) bool { seen++; check("IterAll", tp, key); return true })
	if seen != 4 {
		t.Fatalf("IterAll visited %d, want 4", seen)
	}
	for _, c := range m.AllCounted() {
		check("AllCounted", c.Tuple, c.Key)
	}
	for _, c := range m.BySym(aSym) {
		check("BySym", c.Tuple, c.Key)
	}
}

// TestUnknownLabelLookupsMissCleanly exercises the string-API wrappers on a
// label that was never interned anywhere in the process.
func TestUnknownLabelLookupsMissCleanly(t *testing.T) {
	m := New(IntElem(1, "A", 0))
	if got := m.ByLabel("never-interned-label-xyz"); got != nil {
		t.Fatalf("ByLabel on unknown label = %v", got)
	}
	if got := m.ByLabelTag("never-interned-label-xyz", 0); got != nil {
		t.Fatalf("ByLabelTag on unknown label = %v", got)
	}
	called := false
	m.IterLabel("never-interned-label-xyz", func(Tuple, int) bool { called = true; return true })
	if called {
		t.Fatal("IterLabel on unknown label invoked the callback")
	}
}
