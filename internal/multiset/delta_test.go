package multiset

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/value"
)

// TestAddAllLabelDeltas checks the touched-label report driving the
// incremental scheduler: one entry per distinct label, NoLabel for tuples
// with no string in the label position.
func TestAddAllLabelDeltas(t *testing.T) {
	m := New()
	labels := m.AddAll([]Tuple{
		Pair(value.Int(1), "A"),
		Pair(value.Int(2), "A"),
		Pair(value.Int(3), "B"),
		New1(value.Int(4)),           // unlabeled: 1-tuple
		{value.Int(5), value.Int(6)}, // unlabeled: non-string field 1
		Pair(value.Str("x"), "A"),    // same label, different kind
	})
	sort.Strings(labels)
	want := []string{NoLabel, "A", "B"}
	sort.Strings(want)
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("AddAll labels = %q, want %q", labels, want)
	}
	if m.Len() != 6 {
		t.Fatalf("Len = %d, want 6", m.Len())
	}
	if got := m.AddAll(nil); len(got) != 0 {
		t.Fatalf("AddAll(nil) = %q, want empty", got)
	}
}

// TestByLabelKeyOrdered checks that the maintained per-label index comes back
// in ascending key order without any per-call sort — the property the
// deterministic matcher relies on.
func TestByLabelKeyOrdered(t *testing.T) {
	m := New()
	for _, v := range []int64{9, 3, 7, 1, 5, 3} {
		m.Add(Pair(value.Int(v), "L"))
	}
	got := m.ByLabel("L")
	for i := 1; i < len(got); i++ {
		if got[i-1].Tuple.Key() >= got[i].Tuple.Key() {
			t.Fatalf("ByLabel not strictly key-ascending at %d: %v then %v", i, got[i-1].Tuple, got[i].Tuple)
		}
	}
	// 5 distinct tuples, one with count 2.
	if len(got) != 5 {
		t.Fatalf("distinct = %d, want 5", len(got))
	}
	if m.Count(Pair(value.Int(3), "L")) != 2 {
		t.Fatal("count of duplicate lost")
	}
}

// TestIterSortedAgreesWithSnapshot checks the zero-copy merged iteration
// against the Compare-sorted Snapshot: same tuples, same order (Key order and
// Compare order agree), same counts.
func TestIterSortedAgreesWithSnapshot(t *testing.T) {
	m := New()
	for i := 0; i < 200; i++ {
		m.Add(New1(value.Int(int64(i * 37 % 101))))
		if i%3 == 0 {
			m.Add(Pair(value.Int(int64(i)), "L"))
		}
		if i%7 == 0 {
			m.Add(New1(value.Str("s")))
		}
	}
	snap := m.Snapshot()
	i := 0
	m.IterSorted(func(tp Tuple, n int) bool {
		if i >= len(snap) {
			t.Fatalf("IterSorted yields more than %d distinct tuples", len(snap))
		}
		if !tp.Equal(snap[i].Tuple) || n != snap[i].N {
			t.Fatalf("IterSorted[%d] = (%v,%d), Snapshot has (%v,%d)", i, tp, n, snap[i].Tuple, snap[i].N)
		}
		i++
		return true
	})
	if i != len(snap) {
		t.Fatalf("IterSorted yielded %d distinct tuples, Snapshot has %d", i, len(snap))
	}
}

// TestIterEarlyExit checks that returning false stops all three iterators.
func TestIterEarlyExit(t *testing.T) {
	m := New()
	for i := int64(0); i < 50; i++ {
		m.Add(IntElem(i, "L", i%4))
	}
	for name, iter := range map[string]func(fn func(Tuple, int) bool){
		"IterSorted":   m.IterSorted,
		"IterLabel":    func(fn func(Tuple, int) bool) { m.IterLabel("L", fn) },
		"IterLabelTag": func(fn func(Tuple, int) bool) { m.IterLabelTag("L", 2, fn) },
	} {
		calls := 0
		iter(func(Tuple, int) bool {
			calls++
			return calls < 3
		})
		if calls != 3 {
			t.Fatalf("%s: early exit after %d calls, want 3", name, calls)
		}
	}
}

// TestIterLabelTagMatchesByLabelTag checks the zero-copy (label, tag) walk
// yields exactly the snapshot the randomized path sees.
func TestIterLabelTagMatchesByLabelTag(t *testing.T) {
	m := New()
	for i := int64(0); i < 40; i++ {
		m.Add(IntElem(i, "L", i%5))
		m.Add(IntElem(i, "R", i%5))
	}
	want := m.ByLabelTag("L", 3)
	var got []Counted
	m.IterLabelTag("L", 3, func(tp Tuple, n int) bool {
		got = append(got, Counted{Tuple: tp, N: n})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("IterLabelTag yields %d, ByLabelTag %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Tuple.Equal(want[i].Tuple) || got[i].N != want[i].N {
			t.Fatalf("at %d: iter (%v,%d) vs snapshot (%v,%d)", i, got[i].Tuple, got[i].N, want[i].Tuple, want[i].N)
		}
	}
}

// TestIndexesAfterRemoval checks sorted-index maintenance through interleaved
// add/remove churn: the label index never resurrects removed tuples and stays
// ordered.
func TestIndexesAfterRemoval(t *testing.T) {
	m := New()
	for i := int64(0); i < 30; i++ {
		m.Add(Pair(value.Int(i), "L"))
	}
	for i := int64(0); i < 30; i += 2 {
		if !m.Remove(Pair(value.Int(i), "L")) {
			t.Fatalf("Remove(%d) failed", i)
		}
	}
	got := m.ByLabel("L")
	if len(got) != 15 {
		t.Fatalf("distinct after removal = %d, want 15", len(got))
	}
	for _, c := range got {
		if c.Tuple[0].AsInt()%2 == 0 {
			t.Fatalf("removed tuple %v still indexed", c.Tuple)
		}
	}
	seen := 0
	m.IterSorted(func(Tuple, int) bool { seen++; return true })
	if seen != 15 {
		t.Fatalf("IterSorted sees %d tuples after removal, want 15", seen)
	}
}
