// Package multiset implements the Gamma model's single database: a counted,
// concurrent multiset of tuples.
//
// Elements follow the paper's conventions: a bare scalar is a 1-tuple, the
// Example-1 elements are pairs [value, label], and the Example-2 elements are
// triplets [value, label, tag] where the tag is the dynamic-dataflow iteration
// number. The multiset is sharded by label so that the reaction matcher — which
// in converted dataflow programs always constrains the label field — touches a
// single shard per pattern, and it maintains a (label, tag) index so the
// dynamic tag-matching rule costs O(1) per candidate lookup.
package multiset

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Tuple is one multiset element: an ordered, fixed-arity sequence of scalars.
// Tuples are treated as immutable; callers must not mutate a Tuple after
// adding it to a Multiset.
type Tuple []value.Value

// New1 returns a 1-tuple holding a bare scalar.
func New1(v value.Value) Tuple { return Tuple{v} }

// Pair returns the paper's Example-1 element shape [value, label].
func Pair(v value.Value, label string) Tuple { return Tuple{v, value.Str(label)} }

// Elem returns the paper's Example-2 element shape [value, label, tag].
func Elem(v value.Value, label string, tag int64) Tuple {
	return Tuple{v, value.Str(label), value.Int(tag)}
}

// IntElem is Elem with an integer payload, the common case in the listings.
func IntElem(v int64, label string, tag int64) Tuple { return Elem(value.Int(v), label, tag) }

// Value returns the first field, the element's data payload.
func (t Tuple) Value() value.Value {
	if len(t) == 0 {
		return value.Value{}
	}
	return t[0]
}

// Label returns the second field when it is a string — the edge-label
// convention of the paper — and reports whether it exists.
func (t Tuple) Label() (string, bool) {
	if len(t) >= 2 && t[1].Kind() == value.KindString {
		return t[1].AsString(), true
	}
	return "", false
}

// Tag returns the third field when it is an integer — the iteration-tag
// convention of the paper — and reports whether it exists.
func (t Tuple) Tag() (int64, bool) {
	if len(t) >= 3 && t[2].Kind() == value.KindInt {
		return t[2].AsInt(), true
	}
	return 0, false
}

// Equal reports field-wise equality (exact, not numeric-promoting: a tuple
// holding Int(2) is a different element from one holding Float(2.0), exactly
// as two distinct molecules).
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Key returns a canonical fingerprint of the tuple, unique per distinct
// tuple. Used as the map key inside the multiset.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		// Kind byte disambiguates e.g. Int(2) ("2") from Float(2.0) ("2.0")
		// even if formatting ever collides.
		b.WriteByte(byte('0' + v.Kind()))
		b.WriteString(v.String())
	}
	return b.String()
}

// AppendKey appends exactly Key()'s fingerprint of t to b and returns the
// extended slice — the allocation-free form the commit path uses to look up
// produced tuples (map indexing by string(b) does not allocate) so the key
// string is materialized only when a genuinely new entry is inserted.
func (t Tuple) AppendKey(b []byte) []byte {
	for i, v := range t {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = append(b, byte('0'+v.Kind()))
		b = v.Append(b)
	}
	return b
}

// PrettyKey renders a Tuple.Key back into the paper's bracketed tuple form
// ("[1, 'A1']"): fields are split on the key separator and stripped of their
// kind byte. Consumers of execution traces (the telemetry provenance DOT)
// use it to label elements that are only known by key. Strings that are not
// well-formed keys are returned unchanged.
func PrettyKey(key string) string {
	if key == "" {
		return key
	}
	parts := strings.Split(key, "\x1f")
	for i, p := range parts {
		if p == "" {
			return key
		}
		parts[i] = p[1:]
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// String renders the tuple in the paper's bracketed style: [1, 'A1', 0].
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Compare orders tuples lexicographically by field string form; used only to
// produce deterministic snapshots for tests and printing.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		a, b := t[i].String(), u[i].String()
		// Order by kind first so mixed-kind multisets sort stably.
		if ka, kb := t[i].Kind(), u[i].Kind(); ka != kb {
			if ka < kb {
				return -1
			}
			return 1
		}
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// ParseTuple reads a tuple from its bracketed source form, e.g. "[1, 'A1', 0]".
func ParseTuple(src string) (Tuple, error) {
	s := strings.TrimSpace(src)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return nil, fmt.Errorf("multiset: tuple %q must be bracketed", src)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return nil, fmt.Errorf("multiset: empty tuple %q", src)
	}
	fields := splitTopLevel(inner)
	t := make(Tuple, 0, len(fields))
	for _, f := range fields {
		v, err := value.Parse(f)
		if err != nil {
			return nil, fmt.Errorf("multiset: tuple %q: %v", src, err)
		}
		t = append(t, v)
	}
	return t, nil
}

// splitTopLevel splits on commas that are not inside quotes.
func splitTopLevel(s string) []string {
	var out []string
	depth := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case depth != 0:
			if c == depth {
				depth = 0
			}
		case c == '\'' || c == '"':
			depth = c
		case c == ',':
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
