package multiset

import "sort"

// elist is a paged, chunked ordered list of entries in ascending key order —
// the storage behind every sorted index of a shard (sorted, bySym, bySymTag).
//
// The seed representation was a flat sorted []*entry with binary insertion:
// correct, but every insert/remove memmoves O(population) pointers, which is
// quadratic over a run that churns one element per firing. Chunking capped
// the entry memmove at one chunk (≤ chunkMax entries), but the first cut kept
// a flat chunk directory, so every chunk split or drop still memmoved
// O(#chunks) slice headers — at 10⁶ entries that is thousands of chunks, and
// the directory traffic became the new quadratic term. The directory is now
// paged: chunks live in pages of at most pageMax, so a chunk split or drop
// memmoves at most pageMax headers within one page, and only a page split or
// drop — pageMax times rarer — touches the (pageMax-times shorter) page
// directory. Two properties the matcher relies on are preserved exactly:
//
//   - exact ascending-key iteration order, which the deterministic sequential
//     matcher (and the golden traces pinned on it) observe;
//   - cheap positional rotation, which the parallel matcher uses to start
//     candidate enumeration at a randomized offset instead of snapshotting
//     and shuffling the whole index per probe.
//
// Chunk sizes stay within [chunkMin, chunkMax] and pages within
// [pageMin, pageMax] (except the last survivor at each level): a split at
// >max yields two halves, a removal that drains below min merges into a
// neighbor when the result fits. The wide hysteresis bands mean an
// insert/remove cycle at a boundary cannot thrash split/merge.
type elist struct {
	pages   []epage // non-empty, each ascending; pages ascending overall
	nchunks int
	total   int
}

// epage is one directory page: a short ordered run of chunks.
type epage [][]*entry

const (
	chunkMax = 512
	chunkMin = 64
	pageMax  = 32
	pageMin  = 4
)

func (l *elist) len() int { return l.total }

// lastKey returns the largest key in the page (pages and chunks are never
// empty).
func (p epage) lastKey() string {
	c := p[len(p)-1]
	return c[len(c)-1].key
}

// pageFor returns the index of the first page whose last key is >= key: the
// only page that can contain key. Equals len(l.pages) when key sorts after
// everything.
func (l *elist) pageFor(key string) int {
	return sort.Search(len(l.pages), func(i int) bool {
		return l.pages[i].lastKey() >= key
	})
}

// chunkFor returns the index of the first chunk in p whose last key is >=
// key, len(p) when key sorts after the whole page.
func chunkFor(p epage, key string) int {
	return sort.Search(len(p), func(i int) bool {
		c := p[i]
		return c[len(c)-1].key >= key
	})
}

// insert places e by ascending key. Keys are unique (one entry per distinct
// tuple), so equality cannot occur.
func (l *elist) insert(e *entry) {
	l.total++
	if len(l.pages) == 0 {
		c := append(make([]*entry, 0, chunkMin), e)
		l.pages = append(l.pages, append(make(epage, 0, pageMin), c))
		l.nchunks = 1
		return
	}
	pi := l.pageFor(e.key)
	if pi == len(l.pages) {
		pi-- // beyond every key: grow the last page
	}
	p := l.pages[pi]
	ci := chunkFor(p, e.key)
	if ci == len(p) {
		ci-- // beyond the page (only possible in the last one): grow its last chunk
	}
	c := p[ci]
	i := sort.Search(len(c), func(i int) bool { return c[i].key >= e.key })
	c = append(c, nil)
	copy(c[i+1:], c[i:])
	c[i] = e
	p[ci] = c
	if len(c) > chunkMax {
		l.splitChunk(pi, ci)
	}
}

// splitChunk halves chunk ci of page pi in place; the header memmove is
// bounded by pageMax.
func (l *elist) splitChunk(pi, ci int) {
	p := l.pages[pi]
	c := p[ci]
	mid := len(c) / 2
	right := make([]*entry, len(c)-mid, chunkMax/2+chunkMin)
	copy(right, c[mid:])
	for i := mid; i < len(c); i++ {
		c[i] = nil
	}
	p[ci] = c[:mid]
	p = append(p, nil)
	copy(p[ci+2:], p[ci+1:])
	p[ci+1] = right
	l.pages[pi] = p
	l.nchunks++
	if len(p) > pageMax {
		l.splitPage(pi)
	}
}

// splitPage halves page pi in place; the page-directory memmove is over a
// directory pageMax times shorter than the chunk population.
func (l *elist) splitPage(pi int) {
	p := l.pages[pi]
	mid := len(p) / 2
	right := make(epage, len(p)-mid, pageMax/2+pageMin)
	copy(right, p[mid:])
	for i := mid; i < len(p); i++ {
		p[i] = nil
	}
	l.pages[pi] = p[:mid]
	l.pages = append(l.pages, nil)
	copy(l.pages[pi+2:], l.pages[pi+1:])
	l.pages[pi+1] = right
}

// remove deletes the entry with the given key, if present.
func (l *elist) remove(key string) {
	pi := l.pageFor(key)
	if pi == len(l.pages) {
		return
	}
	p := l.pages[pi]
	ci := chunkFor(p, key)
	if ci == len(p) {
		return
	}
	c := p[ci]
	i := sort.Search(len(c), func(i int) bool { return c[i].key >= key })
	if i >= len(c) || c[i].key != key {
		return
	}
	copy(c[i:], c[i+1:])
	c[len(c)-1] = nil
	c = c[:len(c)-1]
	p[ci] = c
	l.total--
	switch {
	case len(c) == 0:
		l.dropChunk(pi, ci)
	case len(c) < chunkMin:
		l.mergeChunk(pi, ci)
	}
}

func (l *elist) dropChunk(pi, ci int) {
	p := l.pages[pi]
	copy(p[ci:], p[ci+1:])
	p[len(p)-1] = nil
	p = p[:len(p)-1]
	l.pages[pi] = p
	l.nchunks--
	switch {
	case len(p) == 0:
		l.dropPage(pi)
	case len(p) < pageMin:
		l.mergePage(pi)
	}
}

func (l *elist) dropPage(pi int) {
	copy(l.pages[pi:], l.pages[pi+1:])
	l.pages[len(l.pages)-1] = nil
	l.pages = l.pages[:len(l.pages)-1]
}

// mergeChunk folds the underfull chunk ci into a same-page neighbor when the
// combination stays within chunkMax; otherwise the small chunk simply
// persists (it is still ordered and bounded below only by emptiness). Not
// merging across a page boundary keeps the operation page-local; at most two
// persistent small chunks per page boundary is within the hysteresis budget.
func (l *elist) mergeChunk(pi, ci int) {
	p := l.pages[pi]
	if ci+1 < len(p) && len(p[ci])+len(p[ci+1]) <= chunkMax {
		p[ci] = append(p[ci], p[ci+1]...)
		l.dropChunk(pi, ci+1)
		return
	}
	if ci > 0 && len(p[ci-1])+len(p[ci]) <= chunkMax {
		p[ci-1] = append(p[ci-1], p[ci]...)
		l.dropChunk(pi, ci)
	}
}

// mergePage folds the underfull page pi into a neighbor when the combination
// stays within pageMax; mirrors mergeChunk one level up.
func (l *elist) mergePage(pi int) {
	if pi+1 < len(l.pages) && len(l.pages[pi])+len(l.pages[pi+1]) <= pageMax {
		l.pages[pi] = append(l.pages[pi], l.pages[pi+1]...)
		l.dropPage(pi + 1)
		return
	}
	if pi > 0 && len(l.pages[pi-1])+len(l.pages[pi]) <= pageMax {
		l.pages[pi-1] = append(l.pages[pi-1], l.pages[pi]...)
		l.dropPage(pi)
	}
}

// each walks every entry in ascending key order until fn returns false.
// Reports whether the walk ran to completion.
func (l *elist) each(fn func(e *entry) bool) bool {
	for _, p := range l.pages {
		for _, c := range p {
			for _, e := range c {
				if !fn(e) {
					return false
				}
			}
		}
	}
	return true
}

// eachRot walks every entry exactly once starting at a rotated position
// derived from r — chunk index and in-chunk offset are picked independently,
// so distinct workers probing the same index start on distinct cache lines.
// The distribution over entries need not be uniform: rotation exists to
// decorrelate concurrent searchers (the model's nondeterministic selection),
// and the walk stays exhaustive, which is what correctness needs.
func (l *elist) eachRot(r uint64, fn func(e *entry) bool) {
	if l.nchunks == 0 {
		return
	}
	// Locate the rotated global chunk index; the page scan is O(#pages),
	// which eachRot callers (one scan per probe over many candidates) absorb.
	g := int(uint32(r) % uint32(l.nchunks))
	pi := 0
	for g >= len(l.pages[pi]) {
		g -= len(l.pages[pi])
		pi++
	}
	ci := g
	start := l.pages[pi][ci]
	off := int(uint32(r>>32) % uint32(len(start)))
	// Tail of the starting chunk, the following chunks wrapping around, then
	// the head of the starting chunk.
	for _, e := range start[off:] {
		if !fn(e) {
			return
		}
	}
	for p, c := pi, ci; ; {
		c++
		if c >= len(l.pages[p]) {
			p, c = p+1, 0
		}
		if p >= len(l.pages) {
			p, c = 0, 0
		}
		if p == pi && c == ci {
			break
		}
		for _, e := range l.pages[p][c] {
			if !fn(e) {
				return
			}
		}
	}
	for _, e := range start[:off] {
		if !fn(e) {
			return
		}
	}
}

// ecursor is a forward cursor over an elist, used by IterAll's cross-shard
// ordered merge.
type ecursor struct {
	l   *elist
	pi  int
	ci  int
	off int
}

// peek returns the entry under the cursor, nil at the end.
func (c *ecursor) peek() *entry {
	if c.pi >= len(c.l.pages) {
		return nil
	}
	return c.l.pages[c.pi][c.ci][c.off]
}

func (c *ecursor) advance() {
	c.off++
	if c.off < len(c.l.pages[c.pi][c.ci]) {
		return
	}
	c.off = 0
	c.ci++
	if c.ci < len(c.l.pages[c.pi]) {
		return
	}
	c.ci = 0
	c.pi++
}
