package multiset

import "sort"

// elist is a chunked ordered list of entries in ascending key order — the
// storage behind every sorted index of a shard (sorted, bySym, bySymTag).
//
// The seed representation was a flat sorted []*entry with binary insertion:
// correct, but every insert/remove memmoves O(population) pointers, which is
// quadratic over a run that churns one element per firing. At the n=10⁶
// workloads the parallel runner targets, a single label's index holds 10⁵-10⁶
// entries and the memmove traffic alone dwarfs the matching work. Chunking
// caps the memmove at one chunk (≤ chunkMax entries) while keeping the two
// properties the matcher relies on:
//
//   - exact ascending-key iteration order, which the deterministic sequential
//     matcher (and the golden traces pinned on it) observe;
//   - cheap positional rotation, which the parallel matcher uses to start
//     candidate enumeration at a randomized offset instead of snapshotting
//     and shuffling the whole index per probe.
//
// Chunk sizes stay within [chunkMin, chunkMax] (except the last survivor):
// a split at >chunkMax yields two half chunks, a removal that drains a chunk
// below chunkMin merges it into a neighbor when the result fits. The wide
// hysteresis band means an insert/remove cycle at a boundary cannot thrash
// split/merge.
type elist struct {
	chunks [][]*entry // non-empty, each ascending; chunks ascending overall
	total  int
}

const (
	chunkMax = 512
	chunkMin = 64
)

func (l *elist) len() int { return l.total }

// chunkFor returns the index of the first chunk whose last key is >= key:
// the only chunk that can contain key. Equals len(l.chunks) when key sorts
// after everything.
func (l *elist) chunkFor(key string) int {
	return sort.Search(len(l.chunks), func(i int) bool {
		c := l.chunks[i]
		return c[len(c)-1].key >= key
	})
}

// insert places e by ascending key. Keys are unique (one entry per distinct
// tuple), so equality cannot occur.
func (l *elist) insert(e *entry) {
	l.total++
	if len(l.chunks) == 0 {
		l.chunks = append(l.chunks, append(make([]*entry, 0, chunkMin), e))
		return
	}
	ci := l.chunkFor(e.key)
	if ci == len(l.chunks) {
		ci-- // beyond every key: grow the last chunk
	}
	c := l.chunks[ci]
	i := sort.Search(len(c), func(i int) bool { return c[i].key >= e.key })
	c = append(c, nil)
	copy(c[i+1:], c[i:])
	c[i] = e
	l.chunks[ci] = c
	if len(c) > chunkMax {
		l.split(ci)
	}
}

// split halves chunk ci in place.
func (l *elist) split(ci int) {
	c := l.chunks[ci]
	mid := len(c) / 2
	right := make([]*entry, len(c)-mid, chunkMax/2+chunkMin)
	copy(right, c[mid:])
	for i := mid; i < len(c); i++ {
		c[i] = nil
	}
	l.chunks[ci] = c[:mid]
	l.chunks = append(l.chunks, nil)
	copy(l.chunks[ci+2:], l.chunks[ci+1:])
	l.chunks[ci+1] = right
}

// remove deletes the entry with the given key, if present.
func (l *elist) remove(key string) {
	ci := l.chunkFor(key)
	if ci == len(l.chunks) {
		return
	}
	c := l.chunks[ci]
	i := sort.Search(len(c), func(i int) bool { return c[i].key >= key })
	if i >= len(c) || c[i].key != key {
		return
	}
	copy(c[i:], c[i+1:])
	c[len(c)-1] = nil
	c = c[:len(c)-1]
	l.chunks[ci] = c
	l.total--
	switch {
	case len(c) == 0:
		l.dropChunk(ci)
	case len(c) < chunkMin:
		l.mergeAt(ci)
	}
}

func (l *elist) dropChunk(ci int) {
	copy(l.chunks[ci:], l.chunks[ci+1:])
	l.chunks[len(l.chunks)-1] = nil
	l.chunks = l.chunks[:len(l.chunks)-1]
}

// mergeAt folds the underfull chunk ci into a neighbor when the combination
// stays within chunkMax; otherwise the small chunk simply persists (it is
// still ordered and bounded below only by emptiness).
func (l *elist) mergeAt(ci int) {
	if ci+1 < len(l.chunks) && len(l.chunks[ci])+len(l.chunks[ci+1]) <= chunkMax {
		l.chunks[ci] = append(l.chunks[ci], l.chunks[ci+1]...)
		l.dropChunk(ci + 1)
		return
	}
	if ci > 0 && len(l.chunks[ci-1])+len(l.chunks[ci]) <= chunkMax {
		l.chunks[ci-1] = append(l.chunks[ci-1], l.chunks[ci]...)
		l.dropChunk(ci)
	}
}

// each walks every entry in ascending key order until fn returns false.
// Reports whether the walk ran to completion.
func (l *elist) each(fn func(e *entry) bool) bool {
	for _, c := range l.chunks {
		for _, e := range c {
			if !fn(e) {
				return false
			}
		}
	}
	return true
}

// eachRot walks every entry exactly once starting at a rotated position
// derived from r — chunk index and in-chunk offset are picked independently,
// so distinct workers probing the same index start on distinct cache lines.
// The distribution over entries need not be uniform: rotation exists to
// decorrelate concurrent searchers (the model's nondeterministic selection),
// and the walk stays exhaustive, which is what correctness needs.
func (l *elist) eachRot(r uint64, fn func(e *entry) bool) {
	nc := len(l.chunks)
	if nc == 0 {
		return
	}
	ci := int(uint32(r) % uint32(nc))
	off := int(uint32(r>>32) % uint32(len(l.chunks[ci])))
	// Tail of the starting chunk, the following chunks, the preceding chunks,
	// then the head of the starting chunk.
	for _, e := range l.chunks[ci][off:] {
		if !fn(e) {
			return
		}
	}
	for i := ci + 1; i < nc; i++ {
		for _, e := range l.chunks[i] {
			if !fn(e) {
				return
			}
		}
	}
	for i := 0; i < ci; i++ {
		for _, e := range l.chunks[i] {
			if !fn(e) {
				return
			}
		}
	}
	for _, e := range l.chunks[ci][:off] {
		if !fn(e) {
			return
		}
	}
}

// ecursor is a forward cursor over an elist, used by IterAll's cross-shard
// ordered merge.
type ecursor struct {
	l   *elist
	ci  int
	off int
}

// peek returns the entry under the cursor, nil at the end.
func (c *ecursor) peek() *entry {
	if c.ci >= len(c.l.chunks) {
		return nil
	}
	return c.l.chunks[c.ci][c.off]
}

func (c *ecursor) advance() {
	c.off++
	if c.off >= len(c.l.chunks[c.ci]) {
		c.ci++
		c.off = 0
	}
}
