package multiset

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func elistKeys(l *elist) []string {
	var keys []string
	l.each(func(e *entry) bool {
		keys = append(keys, e.key)
		return true
	})
	return keys
}

// checkElist verifies the structural invariants after every mutation: pages
// and chunks non-empty and within bounds, globally ascending keys, total and
// nchunks consistent.
func checkElist(t *testing.T, l *elist) {
	t.Helper()
	n, nc := 0, 0
	prev := ""
	for pi, p := range l.pages {
		if len(p) == 0 {
			t.Fatalf("page %d empty", pi)
		}
		if len(p) > pageMax {
			t.Fatalf("page %d holds %d chunks > pageMax", pi, len(p))
		}
		for ci, c := range p {
			if len(c) == 0 {
				t.Fatalf("page %d chunk %d empty", pi, ci)
			}
			if len(c) > chunkMax {
				t.Fatalf("page %d chunk %d holds %d > chunkMax", pi, ci, len(c))
			}
			nc++
			for _, e := range c {
				if n > 0 && e.key <= prev {
					t.Fatalf("keys out of order: %q after %q", e.key, prev)
				}
				prev = e.key
				n++
			}
		}
	}
	if n != l.total {
		t.Fatalf("total = %d, entries = %d", l.total, n)
	}
	if nc != l.nchunks {
		t.Fatalf("nchunks = %d, counted %d", l.nchunks, nc)
	}
}

// TestElistChurn drives random insert/remove churn against a sorted-slice
// model, checking order, membership and chunk invariants throughout.
func TestElistChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var l elist
	model := map[string]*entry{}
	for step := 0; step < 20000; step++ {
		key := fmt.Sprintf("k%06d", rng.Intn(3000))
		if e, ok := model[key]; ok && rng.Intn(2) == 0 {
			l.remove(e.key)
			delete(model, key)
		} else if !ok {
			e := &entry{key: key}
			l.insert(e)
			model[key] = e
		}
		if step%500 == 0 {
			checkElist(t, &l)
		}
	}
	checkElist(t, &l)
	want := make([]string, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)
	got := elistKeys(&l)
	if len(got) != len(want) {
		t.Fatalf("elist holds %d keys, model %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("at %d: %q vs model %q", i, got[i], want[i])
		}
	}
}

// TestElistRotExhaustive checks eachRot visits every entry exactly once for
// arbitrary rotations, across enough entries to span multiple chunks.
func TestElistRotExhaustive(t *testing.T) {
	var l elist
	const n = 2000 // several chunks
	for i := 0; i < n; i++ {
		l.insert(&entry{key: fmt.Sprintf("k%06d", i)})
	}
	checkElist(t, &l)
	if l.nchunks < 3 {
		t.Fatalf("want ≥3 chunks for rotation coverage, got %d", l.nchunks)
	}
	for _, rot := range []uint64{0, 1, 5<<32 | 999, ^uint64(0), 1 << 31} {
		seen := map[string]bool{}
		l.eachRot(rot, func(e *entry) bool {
			if seen[e.key] {
				t.Fatalf("rot %d: key %q visited twice", rot, e.key)
			}
			seen[e.key] = true
			return true
		})
		if len(seen) != n {
			t.Fatalf("rot %d: visited %d of %d entries", rot, len(seen), n)
		}
	}
	// Early exit stops the walk.
	calls := 0
	l.eachRot(7, func(e *entry) bool { calls++; return calls < 10 })
	if calls != 10 {
		t.Fatalf("early exit after %d calls, want 10", calls)
	}
}

// TestElistPageChurn grows the list far past one page, drains it back down,
// and churns around the page boundaries — the regime where the old flat chunk
// directory memmoved O(#chunks) headers per split/drop and where page
// split/merge/drop now do the work. Invariants are checked continuously and
// the surviving contents are compared against a model at the end.
func TestElistPageChurn(t *testing.T) {
	var l elist
	key := func(i int) string { return fmt.Sprintf("k%07d", i) }
	// Grow to several pages (n entries / chunkMax ≈ chunks; / pageMax ≈ pages).
	// Sequential ascending inserts leave ~half-full chunks and pages, so this
	// yields ~96 chunks across ~6 pages.
	const n = 3 * chunkMax * pageMax / 2
	for i := 0; i < n; i++ {
		l.insert(&entry{key: key(i)})
	}
	checkElist(t, &l)
	if len(l.pages) < 3 {
		t.Fatalf("want ≥3 pages after %d inserts, got %d", n, len(l.pages))
	}
	// Drain from the middle outward so chunk drops land on interior pages and
	// page merges/drops fire.
	for i := n / 4; i < 3*n/4; i++ {
		l.remove(key(i))
		if i%997 == 0 {
			checkElist(t, &l)
		}
	}
	checkElist(t, &l)
	// Churn inserts/removes straddling the surviving boundary regions.
	rng := rand.New(rand.NewSource(7))
	live := map[int]bool{}
	for i := 0; i < n/4; i++ {
		live[i] = true
	}
	for i := 3 * n / 4; i < n; i++ {
		live[i] = true
	}
	for step := 0; step < 30000; step++ {
		i := rng.Intn(n)
		if live[i] {
			l.remove(key(i))
			delete(live, i)
		} else {
			l.insert(&entry{key: key(i)})
			live[i] = true
		}
		if step%1000 == 0 {
			checkElist(t, &l)
		}
	}
	checkElist(t, &l)
	if l.len() != len(live) {
		t.Fatalf("len = %d, model %d", l.len(), len(live))
	}
	got := elistKeys(&l)
	want := make([]string, 0, len(live))
	for i := range live {
		want = append(want, key(i))
	}
	sort.Strings(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("at %d: %q vs model %q", i, got[i], want[i])
		}
	}
	// Drain completely: the last survivor path at both levels.
	for i := range live {
		l.remove(key(i))
	}
	checkElist(t, &l)
	if l.len() != 0 || len(l.pages) != 0 || l.nchunks != 0 {
		t.Fatalf("drained list not empty: len=%d pages=%d nchunks=%d", l.len(), len(l.pages), l.nchunks)
	}
}

// TestElistCursor checks the merge cursor walks in order to the end.
func TestElistCursor(t *testing.T) {
	var l elist
	for i := 0; i < 1500; i++ {
		l.insert(&entry{key: fmt.Sprintf("k%06d", (i*7+3)%1500)}) // 7 ⟂ 1500: a permutation
	}
	cur := ecursor{l: &l}
	prev := ""
	n := 0
	for e := cur.peek(); e != nil; e = cur.peek() {
		if n > 0 && e.key <= prev {
			t.Fatalf("cursor out of order: %q after %q", e.key, prev)
		}
		prev = e.key
		n++
		cur.advance()
	}
	if n != l.len() {
		t.Fatalf("cursor visited %d, len %d", n, l.len())
	}
}
