package multiset

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func elistKeys(l *elist) []string {
	var keys []string
	l.each(func(e *entry) bool {
		keys = append(keys, e.key)
		return true
	})
	return keys
}

// checkElist verifies the structural invariants after every mutation: chunks
// non-empty and within bounds, globally ascending keys, total consistent.
func checkElist(t *testing.T, l *elist) {
	t.Helper()
	n := 0
	prev := ""
	for ci, c := range l.chunks {
		if len(c) == 0 {
			t.Fatalf("chunk %d empty", ci)
		}
		if len(c) > chunkMax {
			t.Fatalf("chunk %d holds %d > chunkMax", ci, len(c))
		}
		for _, e := range c {
			if n > 0 && e.key <= prev {
				t.Fatalf("keys out of order: %q after %q", e.key, prev)
			}
			prev = e.key
			n++
		}
	}
	if n != l.total {
		t.Fatalf("total = %d, entries = %d", l.total, n)
	}
}

// TestElistChurn drives random insert/remove churn against a sorted-slice
// model, checking order, membership and chunk invariants throughout.
func TestElistChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var l elist
	model := map[string]*entry{}
	for step := 0; step < 20000; step++ {
		key := fmt.Sprintf("k%06d", rng.Intn(3000))
		if e, ok := model[key]; ok && rng.Intn(2) == 0 {
			l.remove(e.key)
			delete(model, key)
		} else if !ok {
			e := &entry{key: key}
			l.insert(e)
			model[key] = e
		}
		if step%500 == 0 {
			checkElist(t, &l)
		}
	}
	checkElist(t, &l)
	want := make([]string, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)
	got := elistKeys(&l)
	if len(got) != len(want) {
		t.Fatalf("elist holds %d keys, model %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("at %d: %q vs model %q", i, got[i], want[i])
		}
	}
}

// TestElistRotExhaustive checks eachRot visits every entry exactly once for
// arbitrary rotations, across enough entries to span multiple chunks.
func TestElistRotExhaustive(t *testing.T) {
	var l elist
	const n = 2000 // several chunks
	for i := 0; i < n; i++ {
		l.insert(&entry{key: fmt.Sprintf("k%06d", i)})
	}
	checkElist(t, &l)
	if len(l.chunks) < 3 {
		t.Fatalf("want ≥3 chunks for rotation coverage, got %d", len(l.chunks))
	}
	for _, rot := range []uint64{0, 1, 5<<32 | 999, ^uint64(0), 1 << 31} {
		seen := map[string]bool{}
		l.eachRot(rot, func(e *entry) bool {
			if seen[e.key] {
				t.Fatalf("rot %d: key %q visited twice", rot, e.key)
			}
			seen[e.key] = true
			return true
		})
		if len(seen) != n {
			t.Fatalf("rot %d: visited %d of %d entries", rot, len(seen), n)
		}
	}
	// Early exit stops the walk.
	calls := 0
	l.eachRot(7, func(e *entry) bool { calls++; return calls < 10 })
	if calls != 10 {
		t.Fatalf("early exit after %d calls, want 10", calls)
	}
}

// TestElistCursor checks the merge cursor walks in order to the end.
func TestElistCursor(t *testing.T) {
	var l elist
	for i := 0; i < 1500; i++ {
		l.insert(&entry{key: fmt.Sprintf("k%06d", (i*7+3)%1500)}) // 7 ⟂ 1500: a permutation
	}
	cur := ecursor{l: &l}
	prev := ""
	n := 0
	for e := cur.peek(); e != nil; e = cur.peek() {
		if n > 0 && e.key <= prev {
			t.Fatalf("cursor out of order: %q after %q", e.key, prev)
		}
		prev = e.key
		n++
		cur.advance()
	}
	if n != l.len() {
		t.Fatalf("cursor visited %d, len %d", n, l.len())
	}
}
