package multiset

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/symtab"
	"repro/internal/value"
)

// randDeltaTuple draws from a small universe so claims collide often enough
// to exercise the partial-failure paths.
func randDeltaTuple(rng *rand.Rand) Tuple {
	labels := []string{"A", "B", "C"}
	tp := Tuple{value.Int(int64(rng.Intn(4)))}
	if rng.Intn(4) > 0 {
		tp = append(tp, value.Str(labels[rng.Intn(len(labels))]))
		if rng.Intn(2) == 0 {
			tp = append(tp, value.Int(int64(rng.Intn(3))))
		}
	}
	return tp
}

// TestApplyDeltasMatchesSequential is the batch-commit property test: over
// 500 seeds, a k-firing ApplyDeltas must be observationally equal to k
// sequential ApplyDelta commits — the same per-delta claims succeed
// (including partial-claim failures mid-batch), the final multisets are
// equal, and the deduplicated produce symbols agree.
func TestApplyDeltasMatchesSequential(t *testing.T) {
	for seed := 0; seed < 500; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		batched := New()
		sequential := New()
		for i, n := 0, rng.Intn(10); i < n; i++ {
			tp := randDeltaTuple(rng)
			k := 1 + rng.Intn(2)
			batched.AddN(tp, k)
			sequential.AddN(tp, k)
		}
		for round := 0; round < 4; round++ {
			k := 1 + rng.Intn(5)
			ds := make([]Delta, k)
			for i := range ds {
				var consume, produce []Tuple
				for j, n := 0, rng.Intn(3); j < n; j++ {
					consume = append(consume, randDeltaTuple(rng))
				}
				for j, n := 0, rng.Intn(3); j < n; j++ {
					produce = append(produce, randDeltaTuple(rng))
				}
				ds[i] = Delta{Consume: consume, Produce: produce}
				if rng.Intn(2) == 0 {
					keys := make([]string, len(consume))
					for j, tp := range consume {
						keys[j] = tp.Key()
					}
					ds[i].CKeys = keys
				}
			}
			applied := make([]bool, k)
			gotN, gotSyms := batched.ApplyDeltas(ds, applied, nil)

			wantN := 0
			var wantSyms []symtab.Sym
			for i := range ds {
				ok, syms := sequential.ApplyDelta(ds[i].Consume, ds[i].CKeys, ds[i].Produce, wantSyms)
				wantSyms = syms
				if ok {
					wantN++
				}
				if ok != applied[i] {
					t.Fatalf("seed %d round %d delta %d: batch applied=%v, sequential=%v (consume=%v)",
						seed, round, i, applied[i], ok, ds[i].Consume)
				}
			}
			if gotN != wantN {
				t.Fatalf("seed %d round %d: batch applied %d deltas, sequential %d", seed, round, gotN, wantN)
			}
			if len(gotSyms) != len(wantSyms) {
				t.Fatalf("seed %d round %d: syms %v vs sequential %v", seed, round, gotSyms, wantSyms)
			}
			for i := range gotSyms {
				if gotSyms[i] != wantSyms[i] {
					t.Fatalf("seed %d round %d: syms %v vs sequential %v", seed, round, gotSyms, wantSyms)
				}
			}
			if !batched.Equal(sequential) {
				t.Fatalf("seed %d round %d: states diverged:\n batch:      %s\n sequential: %s",
					seed, round, batched, sequential)
			}
		}
	}
}

// TestApplyDeltasLaterSeesEarlier pins the in-batch ordering semantics: a
// delta may consume what an earlier delta of the same batch produced, and a
// delta whose claim fails must not affect later deltas.
func TestApplyDeltasLaterSeesEarlier(t *testing.T) {
	m := New(IntElem(1, "A", 0))
	applied := make([]bool, 3)
	n, syms := m.ApplyDeltas([]Delta{
		{Consume: []Tuple{IntElem(1, "A", 0)}, Produce: []Tuple{IntElem(2, "B", 0)}},
		{Consume: []Tuple{IntElem(1, "A", 0)}, Produce: []Tuple{IntElem(7, "C", 0)}}, // gone: claimed by delta 0
		{Consume: []Tuple{IntElem(2, "B", 0)}, Produce: []Tuple{IntElem(3, "C", 0)}}, // produced by delta 0
	}, applied, nil)
	if n != 2 || !applied[0] || applied[1] || !applied[2] {
		t.Fatalf("applied = %v (n=%d), want [true false true]", applied, n)
	}
	if !m.Contains(IntElem(3, "C", 0)) || m.Contains(IntElem(7, "C", 0)) || m.Len() != 1 {
		t.Fatalf("unexpected final state %s", m)
	}
	bSym, _ := symtab.SymOf("B")
	cSym, _ := symtab.SymOf("C")
	if len(syms) != 2 || syms[0] != bSym || syms[1] != cSym {
		t.Fatalf("syms = %v, want [B C]", syms)
	}
}

// TestApplyDeltaAnnihilation checks that a consume/produce pair with equal
// fingerprints (the within-delta annihilation fast path) keeps exact
// remove-then-insert semantics: counts unchanged, claim still gross.
func TestApplyDeltaAnnihilation(t *testing.T) {
	m := New(IntElem(1, "A", 0), IntElem(2, "A", 0))
	// consume {1A, 2A}, produce {1A}: net removal of 2A only.
	ok, syms := m.ApplyDelta(
		[]Tuple{IntElem(1, "A", 0), IntElem(2, "A", 0)}, nil,
		[]Tuple{IntElem(1, "A", 0)}, nil)
	if !ok {
		t.Fatal("claim failed on available molecules")
	}
	if m.Count(IntElem(1, "A", 0)) != 1 || m.Contains(IntElem(2, "A", 0)) || m.Len() != 1 {
		t.Fatalf("unexpected state %s", m)
	}
	aSym, _ := symtab.SymOf("A")
	if len(syms) != 1 || syms[0] != aSym {
		t.Fatalf("syms = %v, want [A]: annihilation must not change the reported delta", syms)
	}
	// Gross claim: consume {x}, produce {x} on an absent x must still fail.
	if ok, _ := m.ApplyDelta([]Tuple{IntElem(9, "Z", 0)}, nil, []Tuple{IntElem(9, "Z", 0)}, nil); ok {
		t.Fatal("net-noop delta claimed an absent molecule")
	}
}

// TestViewEnumerationExhaustive checks that rotated View enumeration visits
// exactly the index's candidates for any rotation, with correct counts and
// cached keys.
func TestViewEnumerationExhaustive(t *testing.T) {
	m := New()
	for i := int64(0); i < 100; i++ {
		m.Add(IntElem(i, "L", i%4))
		if i%3 == 0 {
			m.Add(New1(value.Int(i))) // unlabeled, for EachAll
		}
	}
	sym := symtab.Intern("L")
	want := m.BySym(sym)
	var v View
	for _, rot := range []uint64{0, 1, 7<<32 | 13, ^uint64(0)} {
		m.LockView(&v, []symtab.Sym{sym}, false)
		seen := map[string]int{}
		v.EachSym(sym, rot, func(tp Tuple, n int, key string) bool {
			if key != tp.Key() {
				t.Fatalf("cached key %q != Key() %q", key, tp.Key())
			}
			seen[key] += n
			return true
		})
		v.Unlock()
		v.Unlock() // idempotent
		if len(seen) != len(want) {
			t.Fatalf("rot %d: EachSym saw %d distinct, want %d", rot, len(seen), len(want))
		}
		for _, c := range want {
			if seen[c.Key] != c.N {
				t.Fatalf("rot %d: key %q count %d, want %d", rot, c.Key, seen[c.Key], c.N)
			}
		}

		m.LockView(&v, nil, true)
		all := 0
		v.EachAll(rot, func(tp Tuple, n int, key string) bool { all++; return true })
		tagged := 0
		v.EachSymTag(sym, 2, rot, func(tp Tuple, n int, key string) bool { tagged++; return true })
		v.Unlock()
		if all != m.Distinct() {
			t.Fatalf("rot %d: EachAll saw %d distinct, want %d", rot, all, m.Distinct())
		}
		if wantTagged := len(m.BySymTag(sym, 2)); tagged != wantTagged {
			t.Fatalf("rot %d: EachSymTag saw %d, want %d", rot, tagged, wantTagged)
		}
	}
}

// TestViewEarlyExit checks that a false return stops rotated enumeration.
func TestViewEarlyExit(t *testing.T) {
	m := New()
	for i := int64(0); i < 50; i++ {
		m.Add(Pair(value.Int(i), "L"))
	}
	sym := symtab.Intern("L")
	var v View
	m.LockView(&v, []symtab.Sym{sym}, false)
	defer v.Unlock()
	calls := 0
	v.EachSym(sym, 3<<32|11, func(Tuple, int, string) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early exit after %d calls, want 5", calls)
	}
}

// TestViewOutsideShardSetPanics pins the misroute guard: enumerating a label
// whose shard the view does not hold must panic rather than race writers.
func TestViewOutsideShardSetPanics(t *testing.T) {
	m := New(Pair(value.Int(1), "A"))
	aSym := symtab.Intern("A")
	other := aSym + 1 // routes to the next shard by construction
	var v View
	m.LockView(&v, []symtab.Sym{aSym}, false)
	defer v.Unlock()
	defer func() {
		if recover() == nil {
			t.Fatal("EachSym outside the locked shard set did not panic")
		}
	}()
	v.EachSym(other, 0, func(Tuple, int, string) bool { return true })
}

// TestApplyDeltaSeqLinearizes pins the property the replay recorder is built
// on: commit sequence numbers drawn inside the locked commit region
// (ApplyDeltaSeq and batched ApplyDeltasSeq, racing across workers) are
// unique, and re-applying the commits sequentially in seq order against a
// clone of the initial multiset succeeds at every step and reproduces the
// concurrent execution's final multiset exactly.
func TestApplyDeltaSeqLinearizes(t *testing.T) {
	const tokens = 400
	const workers = 4
	init := New()
	for i := 0; i < tokens; i++ {
		init.Add(Tuple{value.Int(int64(i)), value.Str("T")})
	}
	m := init.Clone()

	type commit struct {
		seq     uint64
		consume Tuple
		produce Tuple
	}
	var mu sync.Mutex
	var commits []commit
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var won []commit
			// Every worker fights for every token; each token is consumed
			// exactly once machine-wide. Even workers commit through the
			// batched path, odd workers one delta at a time.
			perm := rng.Perm(tokens)
			if w%2 == 0 {
				const span = 8
				for at := 0; at < len(perm); at += span {
					end := min(at+span, len(perm))
					ds := make([]Delta, 0, end-at)
					for _, i := range perm[at:end] {
						ds = append(ds, Delta{
							Consume: []Tuple{{value.Int(int64(i)), value.Str("T")}},
							Produce: []Tuple{{value.Int(int64(i)), value.Str("D")}},
						})
					}
					applied := make([]bool, len(ds))
					seqs := make([]uint64, len(ds))
					m.ApplyDeltasSeq(ds, applied, seqs, nil)
					for i, ok := range applied {
						if ok {
							won = append(won, commit{seqs[i], ds[i].Consume[0], ds[i].Produce[0]})
						}
					}
				}
			} else {
				for _, i := range perm {
					consume := Tuple{value.Int(int64(i)), value.Str("T")}
					produce := Tuple{value.Int(int64(i)), value.Str("D")}
					ok, seq, _ := m.ApplyDeltaSeq([]Tuple{consume}, nil, []Tuple{produce}, nil)
					if ok {
						won = append(won, commit{seq, consume, produce})
					}
				}
			}
			mu.Lock()
			commits = append(commits, won...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	if len(commits) != tokens {
		t.Fatalf("commits = %d, want %d (each token consumed exactly once)", len(commits), tokens)
	}
	seen := make(map[uint64]bool, len(commits))
	for _, c := range commits {
		if seen[c.seq] {
			t.Fatalf("commit seq %d drawn twice", c.seq)
		}
		seen[c.seq] = true
	}
	sort.Slice(commits, func(i, j int) bool { return commits[i].seq < commits[j].seq })
	replayed := init.Clone()
	for i, c := range commits {
		if ok, _ := replayed.ApplyDelta([]Tuple{c.consume}, nil, []Tuple{c.produce}, nil); !ok {
			t.Fatalf("linearized step %d (seq %d) failed to claim %v", i+1, c.seq, c.consume)
		}
	}
	if !replayed.Equal(m) {
		t.Fatal("sequential replay of the seq-ordered commits differs from the concurrent final multiset")
	}
}
