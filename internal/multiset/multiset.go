package multiset

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/symtab"
)

// shardCount is the number of independently locked shards. A fixed power of
// two keeps shard selection a cheap mask; 32 comfortably exceeds the worker
// counts exercised by the benchmarks.
const shardCount = 32

// NoLabel is the delta marker reported by AddAll for tuples that carry no
// string label field. It can never collide with a real label extracted by
// Tuple.Label (those are the label's exact bytes; a real "\x00" label would
// report itself, which is still sound — see gamma's subscription index).
const NoLabel = "\x00"

// NoLabelSym is NoLabel's interned symbol: the delta marker reported by
// ApplyDelta for produced tuples without a string label field. (A real
// "\x00" label interns to the same symbol and stays sound for the same
// reason as NoLabel.)
var NoLabelSym = symtab.Intern(NoLabel)

// entry is one distinct tuple with its multiplicity. key caches Tuple.Key()
// (the ordering used by every sorted index, and the fingerprint handed to the
// matcher so a probe never rebuilds it), and sym/tag cache the label symbol
// and iteration tag so removal maintains the indexes without re-deriving
// them from the tuple.
type entry struct {
	tuple  Tuple
	key    string
	count  int
	sym    symtab.Sym // label symbol; symtab.None for unlabeled tuples
	tag    int64
	hasTag bool
}

// shard is an independently locked slice of the multiset. All tuples with the
// same label land in the same shard, so a label-constrained pattern match
// takes exactly one shard lock.
//
// Every index is a chunked list of entries kept incrementally sorted by key
// (see elist.go): candidate enumeration for the reaction matcher is a plain
// in-order walk — no per-probe sort.Slice, no map-iteration order to launder —
// and insertion/removal memmoves are bounded by the chunk size instead of the
// index population.
type shard struct {
	mu sync.RWMutex
	// byKey maps Tuple.Key() to its entry.
	byKey map[string]*entry
	// sorted holds every entry of the shard in ascending key order.
	sorted elist
	// bySym maps an element label symbol to its entries, ascending key order.
	bySym map[symtab.Sym]*elist
	// bySymTag maps (label symbol, tag) to its entries, ascending key order;
	// this is the dynamic-dataflow tag-matching index.
	bySymTag map[symTag]*elist
	// free recycles entry structs across remove/add cycles (bounded by
	// freeMax). Only the struct is recycled: tuple backings and key strings
	// escape to searchers, memo keys and traces, so they are never reused.
	free []*entry
	// arena chunk-allocates entries, key strings and tuple-cell copies for
	// freelist misses (see arena.go) — the commit path's hot allocations.
	arena shardArena
}

type symTag struct {
	sym symtab.Sym
	tag int64
}

// freeMax bounds the per-shard entry freelist.
const freeMax = 1024

// getEntry returns a recycled or fresh entry struct.
func (s *shard) getEntry() *entry {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return s.arena.newEntry()
}

// putEntry recycles e after it was unlinked from every index, dropping its
// references so the tuple and key can be collected once external readers
// (searchers holding the consumed tuples) let go.
func (s *shard) putEntry(e *entry) {
	if len(s.free) >= freeMax {
		return
	}
	*e = entry{}
	s.free = append(s.free, e)
}

// Multiset is the Gamma model's single database: a counted multiset of
// tuples safe for concurrent use. The zero value is not usable; call New.
type Multiset struct {
	shards [shardCount]shard
	size   int64 // total element count incl. multiplicity, guarded by sizeMu
	sizeMu sync.Mutex
	// commitSeq numbers committed writes. A sequence number taken while the
	// writer still holds the locks of every shard it touched (or, for the
	// two-phase TryRemoveAll/AddAll path, after the claim succeeded but
	// before the products became visible) is a valid linearization of the
	// execution: a firing that consumes another firing's product must take
	// that product's shard lock after the producer released it, so the
	// producer's number is always the smaller one. Replay recorders sort on
	// it to turn a nondeterministic parallel run into a sequential schedule.
	commitSeq atomic.Uint64
}

// NextCommitSeq draws the next commit sequence number. Writers that commit
// through the two-phase TryRemoveAll/AddAll path call it between the claim
// and the insert; the batched commit paths assign numbers internally via
// ApplyDeltaSeq/ApplyDeltasSeq.
func (m *Multiset) NextCommitSeq() uint64 { return m.commitSeq.Add(1) }

// New returns an empty multiset, optionally pre-populated with tuples.
func New(tuples ...Tuple) *Multiset {
	m := &Multiset{}
	for i := range m.shards {
		s := &m.shards[i]
		s.byKey = make(map[string]*entry)
		s.bySym = make(map[symtab.Sym]*elist)
		s.bySymTag = make(map[symTag]*elist)
	}
	for _, t := range tuples {
		m.Add(t)
	}
	return m
}

// labelSymOf interns the tuple's label, or returns symtab.None when t has no
// string label field.
func labelSymOf(t Tuple) symtab.Sym {
	if label, ok := t.Label(); ok {
		return symtab.Intern(label)
	}
	return symtab.None
}

// shardIndex picks the shard for a tuple: labeled tuples route by label
// symbol (so label queries are single-shard, and the route is a mask instead
// of a byte hash), unlabeled ones by the full key.
func shardIndex(sym symtab.Sym, key string) uint32 {
	if sym != symtab.None {
		return uint32(sym) & (shardCount - 1)
	}
	return hashString(key) & (shardCount - 1)
}

// shardIndexBytes is shardIndex for a fingerprint held as bytes; the two hash
// identically so a key routes to the same shard in either form.
func shardIndexBytes(sym symtab.Sym, key []byte) uint32 {
	if sym != symtab.None {
		return uint32(sym) & (shardCount - 1)
	}
	return hashBytes(key) & (shardCount - 1)
}

func (m *Multiset) shardForSym(sym symtab.Sym) *shard {
	return &m.shards[uint32(sym)&(shardCount-1)]
}

// hashString is 32-bit FNV-1a, inlined so neither form allocates a hasher.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func hashBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

func (m *Multiset) addSize(delta int64) {
	m.sizeMu.Lock()
	m.size += delta
	m.sizeMu.Unlock()
}

// Add inserts one occurrence of t.
func (m *Multiset) Add(t Tuple) { m.AddN(t, 1) }

// AddN inserts n occurrences of t. n must be positive.
func (m *Multiset) AddN(t Tuple, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("multiset: AddN(%s, %d): n must be positive", t, n))
	}
	key := t.Key()
	sym := labelSymOf(t)
	s := &m.shards[shardIndex(sym, key)]
	s.mu.Lock()
	s.addLocked(t, key, sym, n)
	s.mu.Unlock()
	m.addSize(int64(n))
}

// addLocked inserts n occurrences into an already locked shard.
func (s *shard) addLocked(t Tuple, key string, sym symtab.Sym, n int) {
	if e, ok := s.byKey[key]; ok {
		e.count += n
		return
	}
	s.addEntryLocked(t, key, sym, n)
}

// addEntryLocked links a new distinct tuple into every index of an already
// locked shard. The caller has established that key is absent from byKey.
func (s *shard) addEntryLocked(t Tuple, key string, sym symtab.Sym, n int) {
	e := s.getEntry()
	e.tuple, e.key, e.count, e.sym = s.arena.cloneTuple(t), key, n, sym
	if tag, ok := t.Tag(); ok && sym != symtab.None {
		e.tag, e.hasTag = tag, true
	}
	s.byKey[key] = e
	s.sorted.insert(e)
	if sym != symtab.None {
		l := s.bySym[sym]
		if l == nil {
			l = new(elist)
			s.bySym[sym] = l
		}
		l.insert(e)
		if e.hasTag {
			st := symTag{sym, e.tag}
			lt := s.bySymTag[st]
			if lt == nil {
				lt = new(elist)
				s.bySymTag[st] = lt
			}
			lt.insert(e)
		}
	}
}

// AddAll inserts one occurrence of every tuple in ts and reports the set of
// labels it touched (deduplicated; NoLabel stands in for tuples without a
// string label field). This is the seed engine's two-phase commit surface;
// the incremental runtime uses ApplyDelta, which folds the consume and
// produce sides into one lock acquisition per shard and reports symbols.
func (m *Multiset) AddAll(ts []Tuple) []string {
	var labels []string
	for _, t := range ts {
		m.Add(t)
		l, ok := t.Label()
		if !ok {
			l = NoLabel
		}
		seen := false
		for _, have := range labels {
			if have == l {
				seen = true
				break
			}
		}
		if !seen {
			labels = append(labels, l)
		}
	}
	return labels
}

// removeLocked decrements e inside an already locked shard, unlinking it from
// every index and recycling the struct when the count reaches zero.
func (s *shard) removeLocked(e *entry) {
	e.count--
	if e.count > 0 {
		return
	}
	delete(s.byKey, e.key)
	s.sorted.remove(e.key)
	if e.sym != symtab.None {
		if l := s.bySym[e.sym]; l != nil {
			l.remove(e.key)
			if l.len() == 0 {
				delete(s.bySym, e.sym)
			}
		}
		if e.hasTag {
			st := symTag{e.sym, e.tag}
			if l := s.bySymTag[st]; l != nil {
				l.remove(e.key)
				if l.len() == 0 {
					delete(s.bySymTag, st)
				}
			}
		}
	}
	s.putEntry(e)
}

// Remove deletes one occurrence of t, reporting whether one existed.
func (m *Multiset) Remove(t Tuple) bool {
	key := t.Key()
	s := &m.shards[shardIndex(labelSymOf(t), key)]
	s.mu.Lock()
	e, ok := s.byKey[key]
	if ok && e.count > 0 {
		s.removeLocked(e)
	} else {
		ok = false
	}
	s.mu.Unlock()
	if ok {
		m.addSize(-1)
	}
	return ok
}

// deltaScratch holds the per-commit scratch of TryRemoveAll, ApplyDelta and
// ApplyDeltas so the hot commit path performs no bookkeeping allocations:
// staged keys, shard routes and label symbols for both sides of the delta,
// the byte buffer produce fingerprints are built into (a key string is
// materialized only when a genuinely new entry is inserted), and the
// per-firing annihilation marks.
type deltaScratch struct {
	ckeys   []string
	cshards []uint32
	pshards []uint32
	psyms   []symtab.Sym
	kbuf    []byte // produce fingerprints, back to back
	koff    []int  // start offset of each produce fingerprint in kbuf
	ccan    []bool // annihilation marks of the firing being applied
	pcan    []bool
}

var deltaPool = sync.Pool{New: func() any { return new(deltaScratch) }}

func (d *deltaScratch) reset() {
	d.ckeys, d.cshards = d.ckeys[:0], d.cshards[:0]
	d.pshards, d.psyms = d.pshards[:0], d.psyms[:0]
	d.kbuf, d.koff = d.kbuf[:0], d.koff[:0]
	d.ccan, d.pcan = d.ccan[:0], d.pcan[:0]
}

// stageConsume appends the consume side's keys and shard routes. ckeys, when
// non-nil, supplies each tuple's cached fingerprint; a nil ckeys computes
// them here.
func (d *deltaScratch) stageConsume(consume []Tuple, ckeys []string, involved *[shardCount]bool) {
	for i, t := range consume {
		var key string
		if ckeys != nil {
			key = ckeys[i]
		} else {
			key = t.Key()
		}
		si := shardIndex(labelSymOf(t), key)
		d.ckeys = append(d.ckeys, key)
		d.cshards = append(d.cshards, si)
		involved[si] = true
	}
}

// stageProduce appends the produce side's fingerprints (into kbuf), shard
// routes and label symbols.
func (d *deltaScratch) stageProduce(produce []Tuple, involved *[shardCount]bool) {
	for _, t := range produce {
		sym := labelSymOf(t)
		off := len(d.kbuf)
		d.koff = append(d.koff, off)
		d.kbuf = t.AppendKey(d.kbuf)
		si := shardIndexBytes(sym, d.kbuf[off:])
		d.pshards = append(d.pshards, si)
		d.psyms = append(d.psyms, sym)
		involved[si] = true
	}
}

// pkey returns the i-th staged produce fingerprint.
func (d *deltaScratch) pkey(i int) []byte {
	end := len(d.kbuf)
	if i+1 < len(d.koff) {
		end = d.koff[i+1]
	}
	return d.kbuf[d.koff[i]:end]
}

// eqBytesString reports b == s without converting either side.
func eqBytesString(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// appendSymsDedup appends the label symbols in add to syms, deduplicated,
// with NoLabelSym standing in for unlabeled tuples.
func appendSymsDedup(syms []symtab.Sym, add []symtab.Sym) []symtab.Sym {
	for _, sym := range add {
		if sym == symtab.None {
			sym = NoLabelSym
		}
		seen := false
		for _, have := range syms {
			if have == sym {
				seen = true
				break
			}
		}
		if !seen {
			syms = append(syms, sym)
		}
	}
	return syms
}

// lockShards locks every shard whose bit is set in involved, in index order
// (the deadlock-avoidance order shared by all multi-shard operations).
func (m *Multiset) lockShards(involved *[shardCount]bool) {
	for i := range m.shards {
		if involved[i] {
			m.shards[i].mu.Lock()
		}
	}
}

func (m *Multiset) unlockShards(involved *[shardCount]bool) {
	for i := range m.shards {
		if involved[i] {
			m.shards[i].mu.Unlock()
		}
	}
}

// claimRangeLocked verifies that one firing's staged consume range [cs, ce)
// is fully available: duplicates within the range require that many
// occurrences. Shards must already be locked; nothing is modified.
func (m *Multiset) claimRangeLocked(cs, ce int, d *deltaScratch) bool {
	for i := cs; i < ce; i++ {
		key := d.ckeys[i]
		need := 1
		for j := cs; j < i; j++ {
			if d.ckeys[j] == key {
				need++
			}
		}
		e, ok := m.shards[d.cshards[i]].byKey[key]
		if !ok || e.count < need {
			return false
		}
	}
	return true
}

// applyRangeLocked commits one firing whose claim already passed: the staged
// consume range [cs, ce) is removed and the produce tuples (staged at
// [ps, pe)) inserted. A consume/produce pair with identical fingerprints
// annihilates — its net effect on every count is zero, so neither side
// touches the indexes or materializes a key string. The claim was checked
// gross, so observable semantics stay exactly remove-then-insert.
func (m *Multiset) applyRangeLocked(produce []Tuple, d *deltaScratch, cs, ce, ps, pe int) {
	d.ccan = d.ccan[:0]
	d.pcan = d.pcan[:0]
	for i := cs; i < ce; i++ {
		d.ccan = append(d.ccan, false)
	}
	for i := ps; i < pe; i++ {
		d.pcan = append(d.pcan, false)
	}
	for pi := ps; pi < pe; pi++ {
		kb := d.pkey(pi)
		for cj := cs; cj < ce; cj++ {
			if !d.ccan[cj-cs] && eqBytesString(kb, d.ckeys[cj]) {
				d.ccan[cj-cs] = true
				d.pcan[pi-ps] = true
				break
			}
		}
	}
	for cj := cs; cj < ce; cj++ {
		if d.ccan[cj-cs] {
			continue
		}
		s := &m.shards[d.cshards[cj]]
		s.removeLocked(s.byKey[d.ckeys[cj]])
	}
	for pi := ps; pi < pe; pi++ {
		if d.pcan[pi-ps] {
			continue
		}
		s := &m.shards[d.pshards[pi]]
		kb := d.pkey(pi)
		if e, ok := s.byKey[string(kb)]; ok {
			e.count++
		} else {
			// internKey: the byte fingerprint becomes a chunk-backed string,
			// so the common miss path (every insert of a fresh tuple) does
			// not pay a per-key allocation.
			s.addEntryLocked(produce[pi-ps], s.arena.internKey(kb), d.psyms[pi], 1)
		}
	}
}

// TryRemoveAll atomically removes one occurrence of every tuple in ts — all
// or nothing. Duplicate tuples in ts require that many occurrences. This is
// the claim step of the seed engine's two-phase commit: a worker that matched
// a reaction's replace-list attempts to claim exactly those molecules; if a
// concurrent worker consumed one first, the claim fails and the worker
// rematches. Removals never enable a reaction (matching is monotone in the
// multiset contents), so unlike AddAll no label delta is reported.
func (m *Multiset) TryRemoveAll(ts []Tuple) bool {
	if len(ts) == 0 {
		return true
	}
	d := deltaPool.Get().(*deltaScratch)
	defer deltaPool.Put(d)
	d.reset()
	var involved [shardCount]bool
	d.stageConsume(ts, nil, &involved)
	m.lockShards(&involved)
	ok := m.claimRangeLocked(0, len(ts), d)
	if ok {
		for i := range ts {
			s := &m.shards[d.cshards[i]]
			s.removeLocked(s.byKey[d.ckeys[i]])
		}
	}
	m.unlockShards(&involved)
	if ok {
		m.addSize(-int64(len(ts)))
	}
	return ok
}

// ApplyDelta is one reaction firing's consume+produce as a single batched
// commit: it atomically removes one occurrence of every tuple in consume
// (all-or-nothing, duplicates requiring that many occurrences) and, on
// success, inserts every tuple in produce — grouped by shard and applied
// under one lock acquisition per involved shard, instead of the seed
// engine's separate TryRemoveAll and AddAll passes.
//
// ckeys, when non-nil, must hold Key() of each consume tuple; the matcher
// passes the fingerprints cached on the entries it enumerated, so the commit
// never rebuilds them. A nil ckeys computes the keys here.
//
// On success it appends the deduplicated label symbols of the produced tuples
// to syms (NoLabelSym standing in for unlabeled tuples) and returns the
// extended slice — the delta that drives the incremental reaction scheduler.
// On a failed claim nothing is modified and syms is returned unchanged.
func (m *Multiset) ApplyDelta(consume []Tuple, ckeys []string, produce []Tuple, syms []symtab.Sym) (bool, []symtab.Sym) {
	ok, _, syms := m.applyDelta(consume, ckeys, produce, syms, false)
	return ok, syms
}

// ApplyDeltaSeq is ApplyDelta that additionally returns the firing's commit
// sequence number, drawn while the shard locks are still held — the property
// that makes the numbers a valid linearization (see commitSeq).
func (m *Multiset) ApplyDeltaSeq(consume []Tuple, ckeys []string, produce []Tuple, syms []symtab.Sym) (bool, uint64, []symtab.Sym) {
	return m.applyDelta(consume, ckeys, produce, syms, true)
}

func (m *Multiset) applyDelta(consume []Tuple, ckeys []string, produce []Tuple, syms []symtab.Sym, wantSeq bool) (bool, uint64, []symtab.Sym) {
	d := deltaPool.Get().(*deltaScratch)
	defer deltaPool.Put(d)
	d.reset()
	var involved [shardCount]bool
	d.stageConsume(consume, ckeys, &involved)
	d.stageProduce(produce, &involved)
	m.lockShards(&involved)
	ok := m.claimRangeLocked(0, len(consume), d)
	var seq uint64
	if ok {
		if wantSeq {
			seq = m.commitSeq.Add(1)
		}
		m.applyRangeLocked(produce, d, 0, len(consume), 0, len(produce))
	}
	m.unlockShards(&involved)
	if !ok {
		return false, 0, syms
	}
	m.addSize(int64(len(produce)) - int64(len(consume)))
	return true, seq, appendSymsDedup(syms, d.psyms)
}

// Count returns the multiplicity of t.
func (m *Multiset) Count(t Tuple) int {
	key := t.Key()
	s := &m.shards[shardIndex(labelSymOf(t), key)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.byKey[key]; ok {
		return e.count
	}
	return 0
}

// Contains reports whether at least one occurrence of t is present.
func (m *Multiset) Contains(t Tuple) bool { return m.Count(t) > 0 }

// Len returns the total number of elements, counting multiplicity.
func (m *Multiset) Len() int {
	m.sizeMu.Lock()
	defer m.sizeMu.Unlock()
	return int(m.size)
}

// Distinct returns the number of distinct tuples.
func (m *Multiset) Distinct() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += s.sorted.len()
		s.mu.RUnlock()
	}
	return n
}

// BySym returns the distinct tuples whose label symbol equals sym, with
// their multiplicities and cached keys, in ascending key order. The slice is
// a snapshot.
func (m *Multiset) BySym(sym symtab.Sym) []Counted {
	s := m.shardForSym(sym)
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.bySym[sym]
	if l == nil {
		return nil
	}
	out := make([]Counted, 0, l.len())
	l.each(func(e *entry) bool {
		out = append(out, Counted{Tuple: e.tuple, N: e.count, Key: e.key})
		return true
	})
	return out
}

// BySymTag returns the distinct tuples matching both label symbol and tag,
// with multiplicities and cached keys, in ascending key order — the
// dynamic-dataflow operand lookup. The slice is a snapshot.
func (m *Multiset) BySymTag(sym symtab.Sym, tag int64) []Counted {
	s := m.shardForSym(sym)
	s.mu.RLock()
	defer s.mu.RUnlock()
	l := s.bySymTag[symTag{sym, tag}]
	if l == nil {
		return nil
	}
	out := make([]Counted, 0, l.len())
	l.each(func(e *entry) bool {
		out = append(out, Counted{Tuple: e.tuple, N: e.count, Key: e.key})
		return true
	})
	return out
}

// ByLabel is BySym by label string; a label that was never interned has no
// entries anywhere, so the miss answers without touching the symbol table.
func (m *Multiset) ByLabel(label string) []Counted {
	sym, ok := symtab.SymOf(label)
	if !ok {
		return nil
	}
	return m.BySym(sym)
}

// ByLabelTag is BySymTag by label string.
func (m *Multiset) ByLabelTag(label string, tag int64) []Counted {
	sym, ok := symtab.SymOf(label)
	if !ok {
		return nil
	}
	return m.BySymTag(sym, tag)
}

// IterSym calls fn once per distinct tuple whose label symbol equals sym, in
// ascending key order, passing the entry's cached key fingerprint — the
// matcher's claim-tracking identity — without copying the index. The shard
// read lock is held for the whole iteration: fn must not mutate the multiset,
// and callers must guarantee no concurrent writers (the deterministic
// sequential matcher qualifies; the parallel runtime uses the snapshotting
// BySym instead).
func (m *Multiset) IterSym(sym symtab.Sym, fn func(t Tuple, n int, key string) bool) {
	s := m.shardForSym(sym)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if l := s.bySym[sym]; l != nil {
		l.each(func(e *entry) bool { return fn(e.tuple, e.count, e.key) })
	}
}

// IterSymTag is IterSym over the (label symbol, tag) index. The same locking
// caveats apply.
func (m *Multiset) IterSymTag(sym symtab.Sym, tag int64, fn func(t Tuple, n int, key string) bool) {
	s := m.shardForSym(sym)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if l := s.bySymTag[symTag{sym, tag}]; l != nil {
		l.each(func(e *entry) bool { return fn(e.tuple, e.count, e.key) })
	}
}

// IterLabel is IterSym by label string, without the key (compatibility
// surface; the matcher iterates by symbol).
func (m *Multiset) IterLabel(label string, fn func(t Tuple, n int) bool) {
	sym, ok := symtab.SymOf(label)
	if !ok {
		return
	}
	m.IterSym(sym, func(t Tuple, n int, _ string) bool { return fn(t, n) })
}

// IterLabelTag is IterLabel over the (label, tag) index.
func (m *Multiset) IterLabelTag(label string, tag int64, fn func(t Tuple, n int) bool) {
	sym, ok := symtab.SymOf(label)
	if !ok {
		return
	}
	m.IterSymTag(sym, tag, func(t Tuple, n int, _ string) bool { return fn(t, n) })
}

// IterAll calls fn once per distinct tuple in ascending key order across the
// whole multiset with the entry's cached key, lazily merging the shards'
// sorted runs — no copy, no sort, and early exit costs only the elements
// actually visited. All shard read locks are held for the whole iteration:
// fn must not mutate the multiset and callers must guarantee no concurrent
// writers (see IterSym).
func (m *Multiset) IterAll(fn func(t Tuple, n int, key string) bool) {
	for i := range m.shards {
		m.shards[i].mu.RLock()
	}
	defer func() {
		for i := range m.shards {
			m.shards[i].mu.RUnlock()
		}
	}()
	var cursors [shardCount]ecursor
	for i := range m.shards {
		cursors[i].l = &m.shards[i].sorted
	}
	for {
		best := -1
		var bestKey string
		for i := range cursors {
			e := cursors[i].peek()
			if e == nil {
				continue
			}
			if best < 0 || e.key < bestKey {
				best, bestKey = i, e.key
			}
		}
		if best < 0 {
			return
		}
		e := cursors[best].peek()
		cursors[best].advance()
		if !fn(e.tuple, e.count, e.key) {
			return
		}
	}
}

// IterAllRot calls fn once per distinct tuple exactly like IterAll, but
// enumeration starts at a position derived from rot — shard order and the
// position within each shard both rotate — instead of the global ascending
// key order. The walk is still exhaustive and, for a fixed rot and multiset
// state, still deterministic; only the starting point moves. This is the
// deterministic matcher's defense against adversarial key order: a fixed
// lex-first start revisits (and re-rejects) the same unmatchable prefix on
// every probe, degrading generic-pattern searches to O(n) per step on
// workloads whose extreme element sorts first. Locking contract as IterAll:
// all shard read locks held throughout, no concurrent writers, fn must not
// mutate.
func (m *Multiset) IterAllRot(rot uint64, fn func(t Tuple, n int, key string) bool) {
	for i := range m.shards {
		m.shards[i].mu.RLock()
	}
	defer func() {
		for i := range m.shards {
			m.shards[i].mu.RUnlock()
		}
	}()
	start := int(uint32(rot) % shardCount)
	stop := false
	for i := 0; i < shardCount && !stop; i++ {
		s := &m.shards[(start+i)&(shardCount-1)]
		s.sorted.eachRot(rot, func(e *entry) bool {
			stop = !fn(e.tuple, e.count, e.key)
			return !stop
		})
	}
}

// IterSorted is IterAll without the key (compatibility surface).
func (m *Multiset) IterSorted(fn func(t Tuple, n int) bool) {
	m.IterAll(func(t Tuple, n int, _ string) bool { return fn(t, n) })
}

// AllCounted returns every distinct tuple with its multiplicity and cached
// key in unspecified (per-shard) order — the cheap snapshot for the
// randomized matcher, which shuffles the candidates anyway. Use Snapshot for
// a deterministic ordering.
func (m *Multiset) AllCounted() []Counted {
	out := make([]Counted, 0, 16)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		s.sorted.each(func(e *entry) bool {
			out = append(out, Counted{Tuple: e.tuple, N: e.count, Key: e.key})
			return true
		})
		s.mu.RUnlock()
	}
	return out
}

// Counted pairs a distinct tuple with its multiplicity and, when it comes
// from a maintained index, the cached Tuple.Key fingerprint.
type Counted struct {
	Tuple Tuple
	N     int
	Key   string
}

// ForEach calls fn once per distinct tuple with its multiplicity, stopping
// early if fn returns false. Iteration takes shard read locks one at a time;
// concurrent mutation of other shards may or may not be observed.
func (m *Multiset) ForEach(fn func(t Tuple, n int) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		done := !s.sorted.each(func(e *entry) bool { return fn(e.tuple, e.count) })
		s.mu.RUnlock()
		if done {
			return
		}
	}
}

// Snapshot returns every distinct tuple with multiplicity, sorted
// deterministically. Intended for tests, printing and external callers; the
// matcher itself walks the maintained indexes via Iter* and AllCounted.
func (m *Multiset) Snapshot() []Counted {
	var out []Counted
	m.ForEach(func(t Tuple, n int) bool {
		out = append(out, Counted{Tuple: t, N: n})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// Expand returns every element including multiplicity as a flat sorted slice.
func (m *Multiset) Expand() []Tuple {
	snap := m.Snapshot()
	var out []Tuple
	for _, c := range snap {
		for i := 0; i < c.N; i++ {
			out = append(out, c.Tuple)
		}
	}
	return out
}

// Clone returns an independent deep copy.
func (m *Multiset) Clone() *Multiset {
	c := New()
	m.ForEach(func(t Tuple, n int) bool {
		c.AddN(t, n)
		return true
	})
	return c
}

// Equal reports whether two multisets hold exactly the same elements with the
// same multiplicities.
func (m *Multiset) Equal(o *Multiset) bool {
	if m.Len() != o.Len() || m.Distinct() != o.Distinct() {
		return false
	}
	equal := true
	m.ForEach(func(t Tuple, n int) bool {
		if o.Count(t) != n {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// String renders the multiset in the paper's style, sorted for determinism:
// {[1, 'A1', 0], [5, 'B1', 0]}. Multiplicities repeat the element.
func (m *Multiset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, c := range m.Snapshot() {
		for i := 0; i < c.N; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(c.Tuple.String())
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Parse reads a multiset from its braced source form, e.g.
// "{[1, 'A1', 0], [5, 'B1', 0]}".
func Parse(src string) (*Multiset, error) {
	s := strings.TrimSpace(src)
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return nil, fmt.Errorf("multiset: %q must be braced", src)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	m := New()
	if inner == "" {
		return m, nil
	}
	// Split on commas outside brackets.
	depth := 0
	start := 0
	flush := func(end int) error {
		field := strings.TrimSpace(inner[start:end])
		if field == "" {
			return fmt.Errorf("multiset: empty element in %q", src)
		}
		t, err := ParseTuple(field)
		if err != nil {
			return err
		}
		m.Add(t)
		return nil
	}
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(len(inner)); err != nil {
		return nil, err
	}
	return m, nil
}
