package multiset

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// shardCount is the number of independently locked shards. A fixed power of
// two keeps shard selection a cheap mask; 32 comfortably exceeds the worker
// counts exercised by the benchmarks.
const shardCount = 32

// NoLabel is the delta marker reported by AddAll for tuples that carry no
// string label field. It can never collide with a real label extracted by
// Tuple.Label (those are the label's exact bytes; a real "\x00" label would
// report itself, which is still sound — see gamma's subscription index).
const NoLabel = "\x00"

// entry is one distinct tuple with its multiplicity. key caches Tuple.Key(),
// the ordering used by every sorted index.
type entry struct {
	tuple Tuple
	key   string
	count int
}

// shard is an independently locked slice of the multiset. All tuples with the
// same label land in the same shard, so a label-constrained pattern match
// takes exactly one shard lock.
//
// Every index is a slice of entries kept incrementally sorted by key (binary
// insertion on the first Add of a distinct tuple, binary removal when its
// count reaches zero). Candidate enumeration for the reaction matcher is
// therefore a plain in-order walk: no per-probe sort.Slice, no map-iteration
// order to launder.
type shard struct {
	mu sync.RWMutex
	// byKey maps Tuple.Key() to its entry.
	byKey map[string]*entry
	// sorted holds every entry of the shard in ascending key order.
	sorted []*entry
	// byLabel maps an element label to its entries, ascending key order.
	byLabel map[string][]*entry
	// byLabelTag maps (label, tag) to its entries, ascending key order; this
	// is the dynamic-dataflow tag-matching index.
	byLabelTag map[labelTag][]*entry
}

type labelTag struct {
	label string
	tag   int64
}

// insertSorted places e into list keeping ascending key order.
func insertSorted(list []*entry, e *entry) []*entry {
	i := sort.Search(len(list), func(i int) bool { return list[i].key >= e.key })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = e
	return list
}

// removeSorted deletes the entry with the given key from list.
func removeSorted(list []*entry, key string) []*entry {
	i := sort.Search(len(list), func(i int) bool { return list[i].key >= key })
	if i < len(list) && list[i].key == key {
		copy(list[i:], list[i+1:])
		list[len(list)-1] = nil
		list = list[:len(list)-1]
	}
	return list
}

// Multiset is the Gamma model's single database: a counted multiset of
// tuples safe for concurrent use. The zero value is not usable; call New.
type Multiset struct {
	shards [shardCount]shard
	size   int64 // total element count incl. multiplicity, guarded by sizeMu
	sizeMu sync.Mutex
}

// New returns an empty multiset, optionally pre-populated with tuples.
func New(tuples ...Tuple) *Multiset {
	m := &Multiset{}
	for i := range m.shards {
		s := &m.shards[i]
		s.byKey = make(map[string]*entry)
		s.byLabel = make(map[string][]*entry)
		s.byLabelTag = make(map[labelTag][]*entry)
	}
	for _, t := range tuples {
		m.Add(t)
	}
	return m
}

// shardFor picks the shard for a tuple: by label when present (so label
// queries are single-shard), otherwise by the full key.
func (m *Multiset) shardFor(t Tuple) *shard {
	if label, ok := t.Label(); ok {
		return &m.shards[hashString(label)&(shardCount-1)]
	}
	return &m.shards[hashString(t.Key())&(shardCount-1)]
}

func (m *Multiset) shardForLabel(label string) *shard {
	return &m.shards[hashString(label)&(shardCount-1)]
}

func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func (m *Multiset) addSize(delta int64) {
	m.sizeMu.Lock()
	m.size += delta
	m.sizeMu.Unlock()
}

// Add inserts one occurrence of t.
func (m *Multiset) Add(t Tuple) { m.AddN(t, 1) }

// AddN inserts n occurrences of t. n must be positive.
func (m *Multiset) AddN(t Tuple, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("multiset: AddN(%s, %d): n must be positive", t, n))
	}
	s := m.shardFor(t)
	key := t.Key()
	s.mu.Lock()
	e, ok := s.byKey[key]
	if ok {
		e.count += n
	} else {
		e = &entry{tuple: t.Clone(), key: key, count: n}
		s.byKey[key] = e
		s.sorted = insertSorted(s.sorted, e)
		if label, ok := t.Label(); ok {
			s.byLabel[label] = insertSorted(s.byLabel[label], e)
			if tag, ok := t.Tag(); ok {
				lt := labelTag{label, tag}
				s.byLabelTag[lt] = insertSorted(s.byLabelTag[lt], e)
			}
		}
	}
	s.mu.Unlock()
	m.addSize(int64(n))
}

// AddAll inserts one occurrence of every tuple in ts and reports the set of
// labels it touched (deduplicated; NoLabel stands in for tuples without a
// string label field). The delta is the input of the incremental reaction
// scheduler: only reactions subscribed to a touched label — or to the
// wildcard bucket — can have become newly enabled by this commit.
func (m *Multiset) AddAll(ts []Tuple) []string {
	var labels []string
	for _, t := range ts {
		m.Add(t)
		l, ok := t.Label()
		if !ok {
			l = NoLabel
		}
		seen := false
		for _, have := range labels {
			if have == l {
				seen = true
				break
			}
		}
		if !seen {
			labels = append(labels, l)
		}
	}
	return labels
}

// removeLocked decrements the entry for key inside an already locked
// shard. Reports whether an occurrence existed.
func (s *shard) removeLocked(t Tuple, key string) bool {
	e, ok := s.byKey[key]
	if !ok || e.count == 0 {
		return false
	}
	e.count--
	if e.count == 0 {
		delete(s.byKey, key)
		s.sorted = removeSorted(s.sorted, key)
		if label, ok := t.Label(); ok {
			if list := removeSorted(s.byLabel[label], key); len(list) > 0 {
				s.byLabel[label] = list
			} else {
				delete(s.byLabel, label)
			}
			if tag, ok := t.Tag(); ok {
				lt := labelTag{label, tag}
				if list := removeSorted(s.byLabelTag[lt], key); len(list) > 0 {
					s.byLabelTag[lt] = list
				} else {
					delete(s.byLabelTag, lt)
				}
			}
		}
	}
	return true
}

// Remove deletes one occurrence of t, reporting whether one existed.
func (m *Multiset) Remove(t Tuple) bool {
	s := m.shardFor(t)
	key := t.Key()
	s.mu.Lock()
	ok := s.removeLocked(t, key)
	s.mu.Unlock()
	if ok {
		m.addSize(-1)
	}
	return ok
}

// TryRemoveAll atomically removes one occurrence of every tuple in ts — all
// or nothing. Duplicate tuples in ts require that many occurrences. This is
// the commit step of the parallel Gamma runtime: a worker that matched a
// reaction's replace-list attempts to claim exactly those molecules; if a
// concurrent worker consumed one first, the claim fails and the worker
// rematches. Removals never enable a reaction (matching is monotone in the
// multiset contents), so unlike AddAll no label delta is reported.
func (m *Multiset) TryRemoveAll(ts []Tuple) bool {
	if len(ts) == 0 {
		return true
	}
	// Lock the involved shards in index order to avoid deadlock.
	involved := make(map[*shard]struct{}, len(ts))
	for _, t := range ts {
		involved[m.shardFor(t)] = struct{}{}
	}
	order := make([]*shard, 0, len(involved))
	for i := range m.shards {
		if _, ok := involved[&m.shards[i]]; ok {
			order = append(order, &m.shards[i])
		}
	}
	for _, s := range order {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range order {
			s.mu.Unlock()
		}
	}()
	// Verify availability, accounting for duplicates in ts.
	need := make(map[string]int, len(ts))
	for _, t := range ts {
		need[t.Key()]++
	}
	for _, t := range ts {
		key := t.Key()
		e, ok := m.shardFor(t).byKey[key]
		if !ok || e.count < need[key] {
			return false
		}
	}
	for _, t := range ts {
		m.shardFor(t).removeLocked(t, t.Key())
	}
	m.addSize(-int64(len(ts)))
	return true
}

// Count returns the multiplicity of t.
func (m *Multiset) Count(t Tuple) int {
	s := m.shardFor(t)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.byKey[t.Key()]; ok {
		return e.count
	}
	return 0
}

// Contains reports whether at least one occurrence of t is present.
func (m *Multiset) Contains(t Tuple) bool { return m.Count(t) > 0 }

// Len returns the total number of elements, counting multiplicity.
func (m *Multiset) Len() int {
	m.sizeMu.Lock()
	defer m.sizeMu.Unlock()
	return int(m.size)
}

// Distinct returns the number of distinct tuples.
func (m *Multiset) Distinct() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.sorted)
		s.mu.RUnlock()
	}
	return n
}

// ByLabel returns the distinct tuples whose label field equals label, with
// their multiplicities, in ascending key order. The slice is a snapshot.
func (m *Multiset) ByLabel(label string) []Counted {
	s := m.shardForLabel(label)
	s.mu.RLock()
	defer s.mu.RUnlock()
	list := s.byLabel[label]
	out := make([]Counted, 0, len(list))
	for _, e := range list {
		out = append(out, Counted{Tuple: e.tuple, N: e.count})
	}
	return out
}

// ByLabelTag returns the distinct tuples matching both label and tag, with
// multiplicities, in ascending key order — the dynamic-dataflow operand
// lookup. The slice is a snapshot.
func (m *Multiset) ByLabelTag(label string, tag int64) []Counted {
	s := m.shardForLabel(label)
	s.mu.RLock()
	defer s.mu.RUnlock()
	list := s.byLabelTag[labelTag{label, tag}]
	out := make([]Counted, 0, len(list))
	for _, e := range list {
		out = append(out, Counted{Tuple: e.tuple, N: e.count})
	}
	return out
}

// IterLabel calls fn once per distinct tuple carrying label, ascending key
// order, without copying the index. The shard read lock is held for the whole
// iteration: fn must not mutate the multiset, and callers must guarantee no
// concurrent writers (the deterministic sequential matcher qualifies; the
// parallel runtime uses the snapshotting ByLabel instead).
func (m *Multiset) IterLabel(label string, fn func(t Tuple, n int) bool) {
	s := m.shardForLabel(label)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.byLabel[label] {
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// IterLabelTag is IterLabel over the (label, tag) index. The same locking
// caveats apply.
func (m *Multiset) IterLabelTag(label string, tag int64, fn func(t Tuple, n int) bool) {
	s := m.shardForLabel(label)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.byLabelTag[labelTag{label, tag}] {
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// IterSorted calls fn once per distinct tuple in ascending key order across
// the whole multiset, lazily merging the shards' sorted runs — no copy, no
// sort, and early exit costs only the elements actually visited. All shard
// read locks are held for the whole iteration: fn must not mutate the
// multiset and callers must guarantee no concurrent writers (see IterLabel).
func (m *Multiset) IterSorted(fn func(t Tuple, n int) bool) {
	for i := range m.shards {
		m.shards[i].mu.RLock()
	}
	defer func() {
		for i := range m.shards {
			m.shards[i].mu.RUnlock()
		}
	}()
	var cursors [shardCount]int
	for {
		best := -1
		var bestKey string
		for i := range m.shards {
			c := cursors[i]
			if c >= len(m.shards[i].sorted) {
				continue
			}
			if k := m.shards[i].sorted[c].key; best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			return
		}
		e := m.shards[best].sorted[cursors[best]]
		cursors[best]++
		if !fn(e.tuple, e.count) {
			return
		}
	}
}

// AllCounted returns every distinct tuple with its multiplicity in
// unspecified (per-shard) order — the cheap snapshot for the randomized
// matcher, which shuffles the candidates anyway. Use Snapshot for a
// deterministic ordering.
func (m *Multiset) AllCounted() []Counted {
	out := make([]Counted, 0, 16)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for _, e := range s.sorted {
			out = append(out, Counted{Tuple: e.tuple, N: e.count})
		}
		s.mu.RUnlock()
	}
	return out
}

// Counted pairs a distinct tuple with its multiplicity.
type Counted struct {
	Tuple Tuple
	N     int
}

// ForEach calls fn once per distinct tuple with its multiplicity, stopping
// early if fn returns false. Iteration takes shard read locks one at a time;
// concurrent mutation of other shards may or may not be observed.
func (m *Multiset) ForEach(fn func(t Tuple, n int) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for _, e := range s.sorted {
			if !fn(e.tuple, e.count) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Snapshot returns every distinct tuple with multiplicity, sorted
// deterministically. Intended for tests, printing and external callers; the
// matcher itself walks the maintained indexes via Iter* and AllCounted.
func (m *Multiset) Snapshot() []Counted {
	var out []Counted
	m.ForEach(func(t Tuple, n int) bool {
		out = append(out, Counted{Tuple: t, N: n})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// Expand returns every element including multiplicity as a flat sorted slice.
func (m *Multiset) Expand() []Tuple {
	snap := m.Snapshot()
	var out []Tuple
	for _, c := range snap {
		for i := 0; i < c.N; i++ {
			out = append(out, c.Tuple)
		}
	}
	return out
}

// Clone returns an independent deep copy.
func (m *Multiset) Clone() *Multiset {
	c := New()
	m.ForEach(func(t Tuple, n int) bool {
		c.AddN(t, n)
		return true
	})
	return c
}

// Equal reports whether two multisets hold exactly the same elements with the
// same multiplicities.
func (m *Multiset) Equal(o *Multiset) bool {
	if m.Len() != o.Len() || m.Distinct() != o.Distinct() {
		return false
	}
	equal := true
	m.ForEach(func(t Tuple, n int) bool {
		if o.Count(t) != n {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// String renders the multiset in the paper's style, sorted for determinism:
// {[1, 'A1', 0], [5, 'B1', 0]}. Multiplicities repeat the element.
func (m *Multiset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, c := range m.Snapshot() {
		for i := 0; i < c.N; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(c.Tuple.String())
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Parse reads a multiset from its braced source form, e.g.
// "{[1, 'A1', 0], [5, 'B1', 0]}".
func Parse(src string) (*Multiset, error) {
	s := strings.TrimSpace(src)
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return nil, fmt.Errorf("multiset: %q must be braced", src)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	m := New()
	if inner == "" {
		return m, nil
	}
	// Split on commas outside brackets.
	depth := 0
	start := 0
	flush := func(end int) error {
		field := strings.TrimSpace(inner[start:end])
		if field == "" {
			return fmt.Errorf("multiset: empty element in %q", src)
		}
		t, err := ParseTuple(field)
		if err != nil {
			return err
		}
		m.Add(t)
		return nil
	}
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(len(inner)); err != nil {
		return nil, err
	}
	return m, nil
}
