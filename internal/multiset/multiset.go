package multiset

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/symtab"
)

// shardCount is the number of independently locked shards. A fixed power of
// two keeps shard selection a cheap mask; 32 comfortably exceeds the worker
// counts exercised by the benchmarks.
const shardCount = 32

// NoLabel is the delta marker reported by AddAll for tuples that carry no
// string label field. It can never collide with a real label extracted by
// Tuple.Label (those are the label's exact bytes; a real "\x00" label would
// report itself, which is still sound — see gamma's subscription index).
const NoLabel = "\x00"

// NoLabelSym is NoLabel's interned symbol: the delta marker reported by
// ApplyDelta for produced tuples without a string label field. (A real
// "\x00" label interns to the same symbol and stays sound for the same
// reason as NoLabel.)
var NoLabelSym = symtab.Intern(NoLabel)

// entry is one distinct tuple with its multiplicity. key caches Tuple.Key()
// (the ordering used by every sorted index, and the fingerprint handed to the
// matcher so a probe never rebuilds it), and sym/tag cache the label symbol
// and iteration tag so removal maintains the indexes without re-deriving
// them from the tuple.
type entry struct {
	tuple  Tuple
	key    string
	count  int
	sym    symtab.Sym // label symbol; symtab.None for unlabeled tuples
	tag    int64
	hasTag bool
}

// shard is an independently locked slice of the multiset. All tuples with the
// same label land in the same shard, so a label-constrained pattern match
// takes exactly one shard lock.
//
// Every index is a slice of entries kept incrementally sorted by key (binary
// insertion on the first Add of a distinct tuple, binary removal when its
// count reaches zero). Candidate enumeration for the reaction matcher is
// therefore a plain in-order walk: no per-probe sort.Slice, no map-iteration
// order to launder.
type shard struct {
	mu sync.RWMutex
	// byKey maps Tuple.Key() to its entry.
	byKey map[string]*entry
	// sorted holds every entry of the shard in ascending key order.
	sorted []*entry
	// bySym maps an element label symbol to its entries, ascending key order.
	bySym map[symtab.Sym][]*entry
	// bySymTag maps (label symbol, tag) to its entries, ascending key order;
	// this is the dynamic-dataflow tag-matching index.
	bySymTag map[symTag][]*entry
}

type symTag struct {
	sym symtab.Sym
	tag int64
}

// insertSorted places e into list keeping ascending key order.
func insertSorted(list []*entry, e *entry) []*entry {
	i := sort.Search(len(list), func(i int) bool { return list[i].key >= e.key })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = e
	return list
}

// removeSorted deletes the entry with the given key from list.
func removeSorted(list []*entry, key string) []*entry {
	i := sort.Search(len(list), func(i int) bool { return list[i].key >= key })
	if i < len(list) && list[i].key == key {
		copy(list[i:], list[i+1:])
		list[len(list)-1] = nil
		list = list[:len(list)-1]
	}
	return list
}

// Multiset is the Gamma model's single database: a counted multiset of
// tuples safe for concurrent use. The zero value is not usable; call New.
type Multiset struct {
	shards [shardCount]shard
	size   int64 // total element count incl. multiplicity, guarded by sizeMu
	sizeMu sync.Mutex
}

// New returns an empty multiset, optionally pre-populated with tuples.
func New(tuples ...Tuple) *Multiset {
	m := &Multiset{}
	for i := range m.shards {
		s := &m.shards[i]
		s.byKey = make(map[string]*entry)
		s.bySym = make(map[symtab.Sym][]*entry)
		s.bySymTag = make(map[symTag][]*entry)
	}
	for _, t := range tuples {
		m.Add(t)
	}
	return m
}

// labelSymOf interns the tuple's label, or returns symtab.None when t has no
// string label field.
func labelSymOf(t Tuple) symtab.Sym {
	if label, ok := t.Label(); ok {
		return symtab.Intern(label)
	}
	return symtab.None
}

// shardIndex picks the shard for a tuple: labeled tuples route by label
// symbol (so label queries are single-shard, and the route is a mask instead
// of a byte hash), unlabeled ones by the full key.
func shardIndex(sym symtab.Sym, key string) uint32 {
	if sym != symtab.None {
		return uint32(sym) & (shardCount - 1)
	}
	return hashString(key) & (shardCount - 1)
}

func (m *Multiset) shardForSym(sym symtab.Sym) *shard {
	return &m.shards[uint32(sym)&(shardCount-1)]
}

func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func (m *Multiset) addSize(delta int64) {
	m.sizeMu.Lock()
	m.size += delta
	m.sizeMu.Unlock()
}

// Add inserts one occurrence of t.
func (m *Multiset) Add(t Tuple) { m.AddN(t, 1) }

// AddN inserts n occurrences of t. n must be positive.
func (m *Multiset) AddN(t Tuple, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("multiset: AddN(%s, %d): n must be positive", t, n))
	}
	key := t.Key()
	sym := labelSymOf(t)
	s := &m.shards[shardIndex(sym, key)]
	s.mu.Lock()
	s.addLocked(t, key, sym, n)
	s.mu.Unlock()
	m.addSize(int64(n))
}

// addLocked inserts n occurrences into an already locked shard.
func (s *shard) addLocked(t Tuple, key string, sym symtab.Sym, n int) {
	e, ok := s.byKey[key]
	if ok {
		e.count += n
		return
	}
	e = &entry{tuple: t.Clone(), key: key, count: n, sym: sym}
	if tag, ok := t.Tag(); ok && sym != symtab.None {
		e.tag, e.hasTag = tag, true
	}
	s.byKey[key] = e
	s.sorted = insertSorted(s.sorted, e)
	if sym != symtab.None {
		s.bySym[sym] = insertSorted(s.bySym[sym], e)
		if e.hasTag {
			st := symTag{sym, e.tag}
			s.bySymTag[st] = insertSorted(s.bySymTag[st], e)
		}
	}
}

// AddAll inserts one occurrence of every tuple in ts and reports the set of
// labels it touched (deduplicated; NoLabel stands in for tuples without a
// string label field). This is the seed engine's two-phase commit surface;
// the incremental runtime uses ApplyDelta, which folds the consume and
// produce sides into one lock acquisition per shard and reports symbols.
func (m *Multiset) AddAll(ts []Tuple) []string {
	var labels []string
	for _, t := range ts {
		m.Add(t)
		l, ok := t.Label()
		if !ok {
			l = NoLabel
		}
		seen := false
		for _, have := range labels {
			if have == l {
				seen = true
				break
			}
		}
		if !seen {
			labels = append(labels, l)
		}
	}
	return labels
}

// removeLocked decrements e inside an already locked shard, unlinking it from
// every index when the count reaches zero.
func (s *shard) removeLocked(e *entry) {
	e.count--
	if e.count > 0 {
		return
	}
	delete(s.byKey, e.key)
	s.sorted = removeSorted(s.sorted, e.key)
	if e.sym != symtab.None {
		if list := removeSorted(s.bySym[e.sym], e.key); len(list) > 0 {
			s.bySym[e.sym] = list
		} else {
			delete(s.bySym, e.sym)
		}
		if e.hasTag {
			st := symTag{e.sym, e.tag}
			if list := removeSorted(s.bySymTag[st], e.key); len(list) > 0 {
				s.bySymTag[st] = list
			} else {
				delete(s.bySymTag, st)
			}
		}
	}
}

// Remove deletes one occurrence of t, reporting whether one existed.
func (m *Multiset) Remove(t Tuple) bool {
	key := t.Key()
	s := &m.shards[shardIndex(labelSymOf(t), key)]
	s.mu.Lock()
	e, ok := s.byKey[key]
	if ok && e.count > 0 {
		s.removeLocked(e)
	} else {
		ok = false
	}
	s.mu.Unlock()
	if ok {
		m.addSize(-1)
	}
	return ok
}

// deltaScratch holds the per-commit scratch of TryRemoveAll and ApplyDelta so
// the hot commit path performs no bookkeeping allocations: precomputed keys,
// shard routes and label symbols for both sides of the delta.
type deltaScratch struct {
	ckeys   []string
	cshards []uint32
	pkeys   []string
	pshards []uint32
	psyms   []symtab.Sym
}

var deltaPool = sync.Pool{New: func() any { return new(deltaScratch) }}

func (d *deltaScratch) reset() {
	d.ckeys, d.cshards = d.ckeys[:0], d.cshards[:0]
	d.pkeys, d.pshards, d.psyms = d.pkeys[:0], d.pshards[:0], d.psyms[:0]
}

// lockShards locks every shard whose bit is set in involved, in index order
// (the deadlock-avoidance order shared by all multi-shard operations).
func (m *Multiset) lockShards(involved *[shardCount]bool) {
	for i := range m.shards {
		if involved[i] {
			m.shards[i].mu.Lock()
		}
	}
}

func (m *Multiset) unlockShards(involved *[shardCount]bool) {
	for i := range m.shards {
		if involved[i] {
			m.shards[i].mu.Unlock()
		}
	}
}

// claimLocked verifies that one occurrence of every consume tuple is
// available (duplicates require that many occurrences) and, if so, removes
// them. Shards must already be locked. Reports whether the claim succeeded;
// on failure nothing is modified.
func (m *Multiset) claimLocked(consume []Tuple, d *deltaScratch) bool {
	for i := range consume {
		key := d.ckeys[i]
		need := 1
		for j := 0; j < i; j++ {
			if d.ckeys[j] == key {
				need++
			}
		}
		e, ok := m.shards[d.cshards[i]].byKey[key]
		if !ok || e.count < need {
			return false
		}
	}
	for i := range consume {
		s := &m.shards[d.cshards[i]]
		s.removeLocked(s.byKey[d.ckeys[i]])
	}
	return true
}

// TryRemoveAll atomically removes one occurrence of every tuple in ts — all
// or nothing. Duplicate tuples in ts require that many occurrences. This is
// the claim step of the seed engine's two-phase commit: a worker that matched
// a reaction's replace-list attempts to claim exactly those molecules; if a
// concurrent worker consumed one first, the claim fails and the worker
// rematches. Removals never enable a reaction (matching is monotone in the
// multiset contents), so unlike AddAll no label delta is reported.
func (m *Multiset) TryRemoveAll(ts []Tuple) bool {
	if len(ts) == 0 {
		return true
	}
	d := deltaPool.Get().(*deltaScratch)
	defer deltaPool.Put(d)
	d.reset()
	var involved [shardCount]bool
	for _, t := range ts {
		key := t.Key()
		si := shardIndex(labelSymOf(t), key)
		d.ckeys = append(d.ckeys, key)
		d.cshards = append(d.cshards, si)
		involved[si] = true
	}
	m.lockShards(&involved)
	ok := m.claimLocked(ts, d)
	m.unlockShards(&involved)
	if ok {
		m.addSize(-int64(len(ts)))
	}
	return ok
}

// ApplyDelta is one reaction firing's consume+produce as a single batched
// commit: it atomically removes one occurrence of every tuple in consume
// (all-or-nothing, duplicates requiring that many occurrences) and, on
// success, inserts every tuple in produce — grouped by shard and applied
// under one lock acquisition per involved shard, instead of the seed
// engine's separate TryRemoveAll and AddAll passes.
//
// ckeys, when non-nil, must hold Key() of each consume tuple; the matcher
// passes the fingerprints cached on the entries it enumerated, so the commit
// never rebuilds them. A nil ckeys computes the keys here.
//
// On success it appends the deduplicated label symbols of the produced tuples
// to syms (NoLabelSym standing in for unlabeled tuples) and returns the
// extended slice — the delta that drives the incremental reaction scheduler.
// On a failed claim nothing is modified and syms is returned unchanged.
func (m *Multiset) ApplyDelta(consume []Tuple, ckeys []string, produce []Tuple, syms []symtab.Sym) (bool, []symtab.Sym) {
	d := deltaPool.Get().(*deltaScratch)
	defer deltaPool.Put(d)
	d.reset()
	var involved [shardCount]bool
	for i, t := range consume {
		var key string
		if ckeys != nil {
			key = ckeys[i]
		} else {
			key = t.Key()
		}
		si := shardIndex(labelSymOf(t), key)
		d.ckeys = append(d.ckeys, key)
		d.cshards = append(d.cshards, si)
		involved[si] = true
	}
	for _, t := range produce {
		key := t.Key()
		sym := labelSymOf(t)
		si := shardIndex(sym, key)
		d.pkeys = append(d.pkeys, key)
		d.pshards = append(d.pshards, si)
		d.psyms = append(d.psyms, sym)
		involved[si] = true
	}
	m.lockShards(&involved)
	if !m.claimLocked(consume, d) {
		m.unlockShards(&involved)
		return false, syms
	}
	for i, t := range produce {
		m.shards[d.pshards[i]].addLocked(t, d.pkeys[i], d.psyms[i], 1)
	}
	m.unlockShards(&involved)
	m.addSize(int64(len(produce)) - int64(len(consume)))
	for _, sym := range d.psyms {
		if sym == symtab.None {
			sym = NoLabelSym
		}
		seen := false
		for _, have := range syms {
			if have == sym {
				seen = true
				break
			}
		}
		if !seen {
			syms = append(syms, sym)
		}
	}
	return true, syms
}

// Count returns the multiplicity of t.
func (m *Multiset) Count(t Tuple) int {
	key := t.Key()
	s := &m.shards[shardIndex(labelSymOf(t), key)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.byKey[key]; ok {
		return e.count
	}
	return 0
}

// Contains reports whether at least one occurrence of t is present.
func (m *Multiset) Contains(t Tuple) bool { return m.Count(t) > 0 }

// Len returns the total number of elements, counting multiplicity.
func (m *Multiset) Len() int {
	m.sizeMu.Lock()
	defer m.sizeMu.Unlock()
	return int(m.size)
}

// Distinct returns the number of distinct tuples.
func (m *Multiset) Distinct() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.sorted)
		s.mu.RUnlock()
	}
	return n
}

// BySym returns the distinct tuples whose label symbol equals sym, with
// their multiplicities and cached keys, in ascending key order. The slice is
// a snapshot.
func (m *Multiset) BySym(sym symtab.Sym) []Counted {
	s := m.shardForSym(sym)
	s.mu.RLock()
	defer s.mu.RUnlock()
	list := s.bySym[sym]
	out := make([]Counted, 0, len(list))
	for _, e := range list {
		out = append(out, Counted{Tuple: e.tuple, N: e.count, Key: e.key})
	}
	return out
}

// BySymTag returns the distinct tuples matching both label symbol and tag,
// with multiplicities and cached keys, in ascending key order — the
// dynamic-dataflow operand lookup. The slice is a snapshot.
func (m *Multiset) BySymTag(sym symtab.Sym, tag int64) []Counted {
	s := m.shardForSym(sym)
	s.mu.RLock()
	defer s.mu.RUnlock()
	list := s.bySymTag[symTag{sym, tag}]
	out := make([]Counted, 0, len(list))
	for _, e := range list {
		out = append(out, Counted{Tuple: e.tuple, N: e.count, Key: e.key})
	}
	return out
}

// ByLabel is BySym by label string; a label that was never interned has no
// entries anywhere, so the miss answers without touching the symbol table.
func (m *Multiset) ByLabel(label string) []Counted {
	sym, ok := symtab.SymOf(label)
	if !ok {
		return nil
	}
	return m.BySym(sym)
}

// ByLabelTag is BySymTag by label string.
func (m *Multiset) ByLabelTag(label string, tag int64) []Counted {
	sym, ok := symtab.SymOf(label)
	if !ok {
		return nil
	}
	return m.BySymTag(sym, tag)
}

// IterSym calls fn once per distinct tuple whose label symbol equals sym, in
// ascending key order, passing the entry's cached key fingerprint — the
// matcher's claim-tracking identity — without copying the index. The shard
// read lock is held for the whole iteration: fn must not mutate the multiset,
// and callers must guarantee no concurrent writers (the deterministic
// sequential matcher qualifies; the parallel runtime uses the snapshotting
// BySym instead).
func (m *Multiset) IterSym(sym symtab.Sym, fn func(t Tuple, n int, key string) bool) {
	s := m.shardForSym(sym)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.bySym[sym] {
		if !fn(e.tuple, e.count, e.key) {
			return
		}
	}
}

// IterSymTag is IterSym over the (label symbol, tag) index. The same locking
// caveats apply.
func (m *Multiset) IterSymTag(sym symtab.Sym, tag int64, fn func(t Tuple, n int, key string) bool) {
	s := m.shardForSym(sym)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.bySymTag[symTag{sym, tag}] {
		if !fn(e.tuple, e.count, e.key) {
			return
		}
	}
}

// IterLabel is IterSym by label string, without the key (compatibility
// surface; the matcher iterates by symbol).
func (m *Multiset) IterLabel(label string, fn func(t Tuple, n int) bool) {
	sym, ok := symtab.SymOf(label)
	if !ok {
		return
	}
	m.IterSym(sym, func(t Tuple, n int, _ string) bool { return fn(t, n) })
}

// IterLabelTag is IterLabel over the (label, tag) index.
func (m *Multiset) IterLabelTag(label string, tag int64, fn func(t Tuple, n int) bool) {
	sym, ok := symtab.SymOf(label)
	if !ok {
		return
	}
	m.IterSymTag(sym, tag, func(t Tuple, n int, _ string) bool { return fn(t, n) })
}

// IterAll calls fn once per distinct tuple in ascending key order across the
// whole multiset with the entry's cached key, lazily merging the shards'
// sorted runs — no copy, no sort, and early exit costs only the elements
// actually visited. All shard read locks are held for the whole iteration:
// fn must not mutate the multiset and callers must guarantee no concurrent
// writers (see IterSym).
func (m *Multiset) IterAll(fn func(t Tuple, n int, key string) bool) {
	for i := range m.shards {
		m.shards[i].mu.RLock()
	}
	defer func() {
		for i := range m.shards {
			m.shards[i].mu.RUnlock()
		}
	}()
	var cursors [shardCount]int
	for {
		best := -1
		var bestKey string
		for i := range m.shards {
			c := cursors[i]
			if c >= len(m.shards[i].sorted) {
				continue
			}
			if k := m.shards[i].sorted[c].key; best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			return
		}
		e := m.shards[best].sorted[cursors[best]]
		cursors[best]++
		if !fn(e.tuple, e.count, e.key) {
			return
		}
	}
}

// IterSorted is IterAll without the key (compatibility surface).
func (m *Multiset) IterSorted(fn func(t Tuple, n int) bool) {
	m.IterAll(func(t Tuple, n int, _ string) bool { return fn(t, n) })
}

// AllCounted returns every distinct tuple with its multiplicity and cached
// key in unspecified (per-shard) order — the cheap snapshot for the
// randomized matcher, which shuffles the candidates anyway. Use Snapshot for
// a deterministic ordering.
func (m *Multiset) AllCounted() []Counted {
	out := make([]Counted, 0, 16)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for _, e := range s.sorted {
			out = append(out, Counted{Tuple: e.tuple, N: e.count, Key: e.key})
		}
		s.mu.RUnlock()
	}
	return out
}

// Counted pairs a distinct tuple with its multiplicity and, when it comes
// from a maintained index, the cached Tuple.Key fingerprint.
type Counted struct {
	Tuple Tuple
	N     int
	Key   string
}

// ForEach calls fn once per distinct tuple with its multiplicity, stopping
// early if fn returns false. Iteration takes shard read locks one at a time;
// concurrent mutation of other shards may or may not be observed.
func (m *Multiset) ForEach(fn func(t Tuple, n int) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for _, e := range s.sorted {
			if !fn(e.tuple, e.count) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// Snapshot returns every distinct tuple with multiplicity, sorted
// deterministically. Intended for tests, printing and external callers; the
// matcher itself walks the maintained indexes via Iter* and AllCounted.
func (m *Multiset) Snapshot() []Counted {
	var out []Counted
	m.ForEach(func(t Tuple, n int) bool {
		out = append(out, Counted{Tuple: t, N: n})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// Expand returns every element including multiplicity as a flat sorted slice.
func (m *Multiset) Expand() []Tuple {
	snap := m.Snapshot()
	var out []Tuple
	for _, c := range snap {
		for i := 0; i < c.N; i++ {
			out = append(out, c.Tuple)
		}
	}
	return out
}

// Clone returns an independent deep copy.
func (m *Multiset) Clone() *Multiset {
	c := New()
	m.ForEach(func(t Tuple, n int) bool {
		c.AddN(t, n)
		return true
	})
	return c
}

// Equal reports whether two multisets hold exactly the same elements with the
// same multiplicities.
func (m *Multiset) Equal(o *Multiset) bool {
	if m.Len() != o.Len() || m.Distinct() != o.Distinct() {
		return false
	}
	equal := true
	m.ForEach(func(t Tuple, n int) bool {
		if o.Count(t) != n {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// String renders the multiset in the paper's style, sorted for determinism:
// {[1, 'A1', 0], [5, 'B1', 0]}. Multiplicities repeat the element.
func (m *Multiset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, c := range m.Snapshot() {
		for i := 0; i < c.N; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(c.Tuple.String())
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Parse reads a multiset from its braced source form, e.g.
// "{[1, 'A1', 0], [5, 'B1', 0]}".
func Parse(src string) (*Multiset, error) {
	s := strings.TrimSpace(src)
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return nil, fmt.Errorf("multiset: %q must be braced", src)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	m := New()
	if inner == "" {
		return m, nil
	}
	// Split on commas outside brackets.
	depth := 0
	start := 0
	flush := func(end int) error {
		field := strings.TrimSpace(inner[start:end])
		if field == "" {
			return fmt.Errorf("multiset: empty element in %q", src)
		}
		t, err := ParseTuple(field)
		if err != nil {
			return err
		}
		m.Add(t)
		return nil
	}
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if err := flush(len(inner)); err != nil {
		return nil, err
	}
	return m, nil
}
