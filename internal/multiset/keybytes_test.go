package multiset

import (
	"math"
	"testing"

	"repro/internal/value"
)

// TestAppendKeyMatchesKey pins the byte-built fingerprint against Key() over
// every value kind and shape the commit path can see, including the float
// formatting corners (".0" suffix, exponents, negatives, NaN/Inf).
func TestAppendKeyMatchesKey(t *testing.T) {
	tuples := []Tuple{
		{value.Int(0)},
		{value.Int(-42)},
		{value.Float(2)},
		{value.Float(2.5)},
		{value.Float(1e21)},
		{value.Float(-0.0000001)},
		{value.Float(math.Inf(1))},
		{value.Float(math.NaN())},
		{value.Bool(true)},
		{value.Bool(false)},
		{value.Str("")},
		{value.Str("with \x1f separator byte")},
		{value.Value{}}, // invalid
		Pair(value.Int(7), "A1"),
		Elem(value.Float(3.5), "B2", 9),
		{value.Int(1), value.Str("x"), value.Int(2), value.Bool(true), value.Float(0.5)},
	}
	var buf []byte
	for _, tp := range tuples {
		buf = buf[:0]
		buf = tp.AppendKey(buf)
		if string(buf) != tp.Key() {
			t.Errorf("AppendKey(%v) = %q, Key() = %q", tp, buf, tp.Key())
		}
	}
}
