package gammaflow

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesRun executes every example binary via `go run` and requires a
// clean exit — the examples double as integration tests of the public API.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn go run")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 8 {
		t.Fatalf("expected at least 8 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s printed nothing", name)
			}
		})
	}
}
