# Developer workflow. `make check` is the local gate: static checks, build,
# the full test suite under the race detector, and one iteration of the
# incremental-engine benchmark family as a smoke test.

GO ?= go

.PHONY: all build vet fmt-check test race bench-smoke bench-compare snapshot stress trace-demo check check-ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt -w needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark case: catches pathological engine regressions
# without benchmark-grade runtimes (see EXPERIMENTS.md E16).
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkGammaIncremental -benchtime 1x .

# Engine comparison gate: run e16 on both engines and fail unless the
# incremental engine's wall time is strictly below the full rescan at n=10^4.
bench-compare:
	$(GO) run ./cmd/gfbench -exp e16 -guard

# Refresh the machine-readable matching-engine measurements (sequential
# engines via e16, work-stealing parallel rows via e20, gammad service load
# rows via e21, matrix dataflow engine rows via e22, service trace-overhead
# rows via e23).
snapshot:
	$(GO) run ./cmd/gfbench -exp e16,e20,e21,e22,e23,e24 -bench-json BENCH_gamma.json

# Observability demo: trace the paper's Fig. 1 program and emit a
# Perfetto-loadable timeline (open trace.json at https://ui.perfetto.dev) plus
# the provenance DAG as DOT — the run rendered as the paper's dataflow graph.
trace-demo:
	$(GO) run ./cmd/gammarun -trace trace.json -trace-format perfetto -metrics examples/fig1.gamma
	$(GO) run ./cmd/gammarun -trace fig1-provenance.dot -trace-format dot examples/fig1.gamma
	@echo "wrote trace.json (Perfetto) and fig1-provenance.dot (Graphviz)"

# Cancellation / fault-model stress: the context, panic-recovery and
# dead-node tests under the race detector, plus the compiled-vs-interpreted
# differential suites (kernel matcher, expression compiler, pure dataflow
# ops, batched multiset commits, steal-scheduler determinism and batch-vs-
# sequential equivalence, three-way dataflow engine differentials, the
# service-side traced-run differential: per-tenant/per-engine registry
# rollups equal the global registry exactly under concurrent load, and the
# record/replay differentials: a parallel run's commit-order schedule must
# replay sequentially to the byte-identical final state) — DESIGN.md §9,
# §10, §12, §14, §15 and §16.
stress:
	$(GO) test -race -count=2 -run 'Cancel|Panic|Fault|Dead|Deadline|Wedge|Retr|Differential|KernelMatches|ApplyDelta|Steal|Batch|Rollup|Replay' \
		./internal/gamma/ ./internal/dataflow/ ./internal/dist/ ./internal/rt/ \
		./internal/expr/ ./internal/multiset/ ./internal/equiv/ \
		./internal/service/ ./internal/telemetry/ ./internal/replay/ .

check: vet fmt-check build race bench-smoke

# CI gate: like check but with explicit timeouts so a wedged pool fails the
# build instead of hanging it. The engine-comparison guard runs in its
# tournament-only short mode: CI machines are noisy, but a 4x-fewer-probes
# engine losing outright is a regression, not noise. The parallel
# differential suites repeat under GOMAXPROCS=2 and GOMAXPROCS=8 so the
# steal scheduler is exercised both time-sliced on few cores and genuinely
# concurrent; the bench smoke compares against the committed BENCH_gamma.json
# snapshot within tolerance (step counts exact, probes and wall bounded).
# The serving stack gates three ways: gammad -selfcheck boots the server on a
# loopback port and drives the client-package smoke (lifecycle, taxonomy
# over the wire, backpressure, trace/stats fetch, schedule replay, Prometheus
# exposition), gfbench e21 puts it under closed-loop load with the p99
# collapse guard and the per-response oracle check, gfbench e23 A/Bs traced
# against untraced load with the trace-overhead ceilings (sampled-off 2%,
# sampled-on 10%), and gfbench e24 guards the schedule recorder (≤10% on the
# reference workload). Record/replay gates twice more: the byte-pinned
# Fig. 1/Fig. 2 golden replays, and the parallel-record → sequential-replay
# differentials under the race detector.
check-ci: vet fmt-check build
	$(GO) test -race -timeout 5m ./...
	$(GO) test -race -timeout 2m -count=2 -run 'Cancel|Panic|Fault|Dead' \
		./internal/gamma/ ./internal/dataflow/ ./internal/dist/
	GOMAXPROCS=2 $(GO) test -race -timeout 2m -count=2 -run 'Steal|Batch|Differential' ./internal/gamma/
	GOMAXPROCS=8 $(GO) test -race -timeout 2m -count=2 -run 'Steal|Batch|Differential' ./internal/gamma/
	$(GO) test -race -timeout 2m -count=2 -run 'Golden|Replay' ./internal/replay/ ./internal/service/ ./cmd/gammarun/ ./cmd/dfrun/
	$(GO) run ./cmd/gammad -selfcheck
	$(GO) run ./cmd/gfbench -exp e16,e20,e21,e22,e23,e24 -short -guard -baseline BENCH_gamma.json
