# Developer workflow. `make check` is the local gate: static checks, build,
# the full test suite under the race detector, and one iteration of the
# incremental-engine benchmark family as a smoke test.

GO ?= go

.PHONY: all build vet fmt-check test race bench-smoke snapshot check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt -w needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark case: catches pathological engine regressions
# without benchmark-grade runtimes (see EXPERIMENTS.md E16).
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkGammaIncremental -benchtime 1x .

# Refresh the machine-readable matching-engine measurements.
snapshot:
	$(GO) run ./cmd/gfbench -exp e16 -bench-json BENCH_gamma.json

check: vet fmt-check build race bench-smoke
