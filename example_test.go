package gammaflow_test

import (
	"fmt"

	gammaflow "repro"
)

// The paper's Example 1, end to end: compile the von Neumann source, run the
// dataflow graph, convert with Algorithm 1, run the Gamma program.
func Example() {
	g, err := gammaflow.CompileSource("ex1", `
		int x = 1; int y = 5; int k = 3; int j = 2; int m;
		m = (x + y) - (k * j);`)
	if err != nil {
		panic(err)
	}
	res, err := gammaflow.RunGraph(g, gammaflow.GraphOptions{})
	if err != nil {
		panic(err)
	}
	m, _ := res.Output("m")
	fmt.Println("dataflow m =", m)

	prog, init, err := gammaflow.ToGamma(g)
	if err != nil {
		panic(err)
	}
	if _, err := gammaflow.RunProgram(prog, init, gammaflow.ProgramOptions{}); err != nil {
		panic(err)
	}
	fmt.Println("gamma stable state:", init)
	// Output:
	// dataflow m = 0
	// gamma stable state: {[0, 'm', 0]}
}

// Eq. 2 of the paper: one reaction selects the smallest element.
func ExampleRunProgram() {
	prog, err := gammaflow.ParseProgram("min", `R = replace (x, y) by x where x < y`)
	if err != nil {
		panic(err)
	}
	m := gammaflow.NewMultiset(
		gammaflow.ScalarElem(gammaflow.Int(9)),
		gammaflow.ScalarElem(gammaflow.Int(4)),
		gammaflow.ScalarElem(gammaflow.Int(7)),
	)
	stats, err := gammaflow.RunProgram(prog, m, gammaflow.ProgramOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(m, "in", stats.Steps, "reactions")
	// Output: {[4]} in 2 reactions
}

// Algorithm 1 renders a graph as the paper-style Gamma listing.
func ExampleToGamma() {
	g := gammaflow.NewGraph("tiny")
	a := g.AddConst("a", gammaflow.Int(2))
	b := g.AddConst("b", gammaflow.Int(3))
	mul := g.AddArith("R1", "*")
	if _, err := g.Connect(a, 0, mul, 0, "A"); err != nil {
		panic(err)
	}
	if _, err := g.Connect(b, 0, mul, 1, "B"); err != nil {
		panic(err)
	}
	if _, err := g.ConnectOut(mul, 0, "P"); err != nil {
		panic(err)
	}
	prog, init, err := gammaflow.ToGamma(g)
	if err != nil {
		panic(err)
	}
	fmt.Print(gammaflow.FormatProgram(prog))
	fmt.Println(init)
	// Output:
	// R1 = replace [id1, 'A', v], [id2, 'B', v]
	//      by [id1 * id2, 'P', v]
	// {[2, 'A', 0], [3, 'B', 0]}
}

// The static termination analysis recognizes strictly shrinking programs.
func ExampleAnalyzeTermination() {
	prog, err := gammaflow.ParseProgram("sieve",
		`R = replace (x, y) by y where x % y == 0 and x != y`)
	if err != nil {
		panic(err)
	}
	hint, _ := gammaflow.AnalyzeTermination(prog)
	fmt.Println(hint)
	// Output: guaranteed
}

// Schema inference types a program's element labels (Structured-Gamma style).
func ExampleInferSchema() {
	prog, err := gammaflow.ParseProgram("p", `
		R1 = replace [id1, 'A1'], [id2, 'B1'] by [id1 + id2, 'B2']`)
	if err != nil {
		panic(err)
	}
	init, err := gammaflow.ParseMultiset(`{[1, 'A1'], [5, 'B1']}`)
	if err != nil {
		panic(err)
	}
	sch, err := gammaflow.InferSchema(prog, init)
	if err != nil {
		panic(err)
	}
	fmt.Print(sch)
	// Output:
	// A1 :: [int, string]
	// B1 :: [int, string]
	// B2 :: [int, string]
}
