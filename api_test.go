package gammaflow

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestContextAPIAcrossModels pins the facade contract: the same RunConfig
// drives both models, expired contexts classify identically, and partial
// statistics are always returned on early exit.
func TestContextAPIAcrossModels(t *testing.T) {
	g, err := CompileSource("ex1", `
	    int x = 1; int y = 5; int k = 3; int j = 2; int m;
	    m = (x + y) - (k * j);`)
	if err != nil {
		t.Fatal(err)
	}
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()

	cfg := RunConfig{RunSpec: RunSpec{Workers: 2, MaxSteps: 1000}}
	res, gerr := RunGraphContext(ctx, g, GraphOptions{RunConfig: cfg})
	if !errors.Is(gerr, ErrDeadline) || !errors.Is(gerr, context.DeadlineExceeded) {
		t.Errorf("graph err = %v, want ErrDeadline", gerr)
	}
	if res == nil {
		t.Error("graph early exit must return a partial result")
	}
	st, perr := RunProgramContext(ctx, prog, init, ProgramOptions{RunConfig: cfg})
	if !errors.Is(perr, ErrDeadline) || !errors.Is(perr, context.DeadlineExceeded) {
		t.Errorf("program err = %v, want ErrDeadline", perr)
	}
	if st == nil {
		t.Error("program early exit must return partial stats")
	}
}

// TestBackgroundWrappersStillWork checks the non-context names remain thin
// wrappers with identical behavior.
func TestBackgroundWrappersStillWork(t *testing.T) {
	g, err := CompileSource("ex1", `
	    int x = 1; int y = 5; int k = 3; int j = 2; int m;
	    m = (x + y) - (k * j);`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunGraph(g, GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Output("m"); !ok || v.String() != "0" {
		t.Errorf("m = %v (%v), want 0", v, ok)
	}
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProgram(prog, init, ProgramOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeFaultInjection checks the fault hook and typed panic error are
// reachable through the facade types alone.
func TestFacadeFaultInjection(t *testing.T) {
	prog, err := ParseProgram("min", "R = replace (x, y) by x where x < y")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMultiset()
	for i := int64(1); i <= 16; i++ {
		m.Add(ScalarElem(Int(i * 3 % 17)))
	}
	st, err := RunProgram(prog, m, ProgramOptions{
		RunConfig:     RunConfig{RunSpec: RunSpec{Workers: 2}},
		FaultInjector: func(site string, worker int) error { panic("injected") },
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if st == nil {
		t.Error("partial stats missing")
	}
}

// TestParseErrorsClassified checks ErrParse reaches facade callers.
func TestParseErrorsClassified(t *testing.T) {
	if _, err := ParseProgram("bad", "replace"); !errors.Is(err, ErrParse) {
		t.Errorf("gamma parse error = %v, want ErrParse", err)
	}
	if _, err := CompileSource("bad", "int = ;"); !errors.Is(err, ErrParse) {
		t.Errorf("compiler parse error = %v, want ErrParse", err)
	}
}

// TestRunSpecDrivesTheFacade pins the serving-era options plumbing: the
// serializable RunSpec (the gammad wire struct) is the single source of the
// engine, timeout and budget knobs for in-process runs too.
func TestRunSpecDrivesTheFacade(t *testing.T) {
	g, err := CompileSource("ex1", `
	    int x = 1; int y = 5; int k = 3; int j = 2; int m;
	    m = (x + y) - (k * j);`)
	if err != nil {
		t.Fatal(err)
	}
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}

	// Unknown engines are rejected before any execution.
	bad := ProgramOptions{RunConfig: RunConfig{RunSpec: RunSpec{Engine: "quantum"}}}
	if _, err := RunProgramContext(context.Background(), prog, init.Clone(), bad); !errors.Is(err, ErrInvalid) {
		t.Errorf("unknown engine: err = %v, want ErrInvalid", err)
	}

	// EngineSeq forces the deterministic interpreter even with Workers set;
	// the run must still reach the stable state.
	seq := ProgramOptions{RunConfig: RunConfig{RunSpec: RunSpec{Engine: EngineSeq, Workers: 8, MaxSteps: 1000}}}
	m := init.Clone()
	if _, err := RunProgramContext(context.Background(), prog, m, seq); err != nil {
		t.Fatalf("EngineSeq run: %v", err)
	}

	// TimeoutMS behaves like a context deadline: same class, same context
	// sentinel, partial stats. A counter program never stabilizes, so the
	// deadline is guaranteed to be what stops it.
	counter, err := ParseProgram("counter", `R = replace [x, 'G'] by [x + 1, 'G']`)
	if err != nil {
		t.Fatal(err)
	}
	work := NewMultiset(PairElem(Int(0), "G"))
	slow := ProgramOptions{RunConfig: RunConfig{RunSpec: RunSpec{TimeoutMS: 20}}}
	st, err := RunProgramContext(context.Background(), counter, work, slow)
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("TimeoutMS expiry: err = %v, want ErrDeadline", err)
	}
	if st == nil {
		t.Error("TimeoutMS expiry must return partial stats")
	}
}
