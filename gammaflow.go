// Package gammaflow is the public API of the reproduction of "Exploring the
// Equivalence between Dynamic Dataflow Model and Gamma — General Abstract
// Model for Multiset mAnipulation" (Mello Jr et al., IPPS 2019,
// arXiv:1811.00607).
//
// It re-exports the stable surface of the internal packages:
//
//   - the Gamma runtime (multiset rewriting with sequential and parallel
//     execution) and the Gamma source language of the paper's Fig. 3 grammar;
//   - the dynamic dataflow runtime (tagged tokens, steer/inctag vertices,
//     sequential and parallel PE schedulers);
//   - Algorithm 1 (dataflow → Gamma) and Algorithm 2 (Gamma → dataflow),
//     the reaction classifier, the multiset mapper of Fig. 4, and the
//     §III-A3 reduction engine;
//   - the mini imperative compiler that derives graphs from the paper's
//     von Neumann sources, and the equivalence checking harness.
//
// Quick start — run the paper's Example 1 in both models, under a deadline
// (the context-first entry points are the primary API; RunGraph/RunProgram
// are the same calls with context.Background()):
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	g, _ := gammaflow.CompileSource("ex1", `
//	    int x = 1; int y = 5; int k = 3; int j = 2; int m;
//	    m = (x + y) - (k * j);`)
//	res, _ := gammaflow.RunGraphContext(ctx, g, gammaflow.GraphOptions{})
//	prog, init, _ := gammaflow.ToGamma(g)
//	gammaflow.RunProgramContext(ctx, prog, init, gammaflow.ProgramOptions{})
//	// res.Output("m") and init now both hold m = 0.
//
// Every run returns partial statistics alongside its error on early exit,
// and errors are classified (ErrDeadline, ErrCanceled, ErrMaxSteps,
// *PanicError, ...) for errors.Is / errors.As routing; see the error
// taxonomy section below.
package gammaflow

import (
	"context"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dfir"
	"repro/internal/dist"
	"repro/internal/equiv"
	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/profile"
	"repro/internal/reuse"
	"repro/internal/rt"
	"repro/internal/schema"
	"repro/internal/value"
)

// Error taxonomy. Every error returned by the Run functions is classified
// under exactly one of these classes (plus the typed *PanicError and
// *NodeError), so callers route failures with errors.Is / errors.As instead
// of string matching. ErrDeadline and ErrCanceled additionally satisfy
// errors.Is against context.DeadlineExceeded / context.Canceled.
var (
	// ErrMaxSteps classifies step/firing-budget exhaustion in either model.
	ErrMaxSteps = rt.ErrMaxSteps
	// ErrCanceled classifies runs stopped by context cancellation.
	ErrCanceled = rt.ErrCanceled
	// ErrDeadline classifies runs stopped by a context deadline.
	ErrDeadline = rt.ErrDeadline
	// ErrDivergent classifies executions judged non-terminating (equivalence
	// harness budget overruns, cluster round limits).
	ErrDivergent = rt.ErrDivergent
	// ErrParse classifies source-language syntax errors.
	ErrParse = rt.ErrParse
	// ErrInvalid classifies structurally invalid programs and graphs.
	ErrInvalid = rt.ErrInvalid
)

type (
	// PanicError reports a panic recovered inside a worker or processing
	// element, with the runtime, reaction/vertex and worker identity attached.
	PanicError = rt.PanicError
	// NodeError reports a cluster node declared dead after its retry budget.
	NodeError = rt.NodeError
	// FaultInjector is a test hook invoked before every reaction or vertex
	// application; see ProgramOptions.FaultInjector.
	FaultInjector = rt.FaultInjector
)

// Tracer observes execution dependency structure; both runtimes share the
// signature (package profile's Collector implements it for work/span
// analysis).
type Tracer interface {
	RecordFiring(name string, consumed, produced []string)
}

// RunSpec is the serializable core of a run configuration: engine, workers,
// seed, step budget and timeout. It is the exact struct the gammad service
// (cmd/gammad) accepts in its wire envelope, so a run is configured from one
// struct whether it executes in-process or over HTTP.
type RunSpec = schema.RunSpec

// Engines selectable in a RunSpec. EngineMatrix is dataflow-only: the
// bulk-synchronous sparse-matrix engine firing every enabled vertex per tick
// (Gamma runs reject it with ErrInvalid).
const (
	EngineAuto     = schema.EngineAuto
	EngineSeq      = schema.EngineSeq
	EngineParallel = schema.EngineParallel
	EngineMatrix   = schema.EngineMatrix
)

// RunRequest and RunResponse are the gammad service's v1 wire envelopes;
// package client wraps them in a typed Go API.
type (
	RunRequest  = schema.RunRequest
	RunResponse = schema.RunResponse
)

// NewGammaRequest and NewGraphRequest build v1 service submissions from the
// same text formats the cmd/ tools read (Fig. 3 grammar + multiset literal,
// dfir).
var (
	NewGammaRequest = schema.NewGammaRequest
	NewGraphRequest = schema.NewGraphRequest
)

// RunConfig holds the execution knobs shared by both runtimes: the
// serializable RunSpec plus the process-local hooks that cannot travel over
// a wire. It is embedded in ProgramOptions and GraphOptions, so the shared
// knobs are set the same way regardless of model:
//
//	gammaflow.ProgramOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{Workers: 8}}}
//	gammaflow.GraphOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{Workers: 8}}}
//
// RunSpec.TimeoutMS, when set, bounds the run like a context deadline
// (ErrDeadline); RunSpec.Engine selects the scheduler explicitly (EngineSeq,
// EngineParallel) or leaves it to Workers (EngineAuto). An invalid spec
// (unknown engine, negative knobs) fails the run with ErrInvalid before any
// execution.
type RunConfig struct {
	// RunSpec holds the serializable knobs (Engine, Workers, Seed, MaxSteps,
	// TimeoutMS), promoted so opt.Workers etc. read as before.
	RunSpec
	// WorkFactor emulates instruction/action cost by spinning this many
	// iterations per application. Process-local: not part of the wire spec.
	WorkFactor int
	// Tracer, when set, receives every firing with its consumed and produced
	// keys. Process-local: not part of the wire spec.
	Tracer Tracer
}

// Scalar values and tuples.
type (
	// Value is the scalar operand domain shared by both models.
	Value = value.Value
	// Tuple is one multiset element.
	Tuple = multiset.Tuple
	// Multiset is the Gamma model's single database.
	Multiset = multiset.Multiset
)

// Value constructors.
var (
	Int        = value.Int
	Float      = value.Float
	Bool       = value.Bool
	Str        = value.Str
	ParseValue = value.Parse
)

// Tuple constructors following the paper's element shapes.
var (
	NewMultiset   = multiset.New
	ParseMultiset = multiset.Parse
	Elem          = multiset.Elem
	IntElem       = multiset.IntElem
	PairElem      = multiset.Pair
	ScalarElem    = multiset.New1
)

// Gamma model.
type (
	// Reaction is one (condition, action) pair of the Γ operator.
	Reaction = gamma.Reaction
	// Program is a set of reactions composed in parallel.
	Program = gamma.Program
	// Plan is a sequential composition of parallel reaction groups.
	Plan = gamma.Plan
	// ProgramStats reports a Gamma execution.
	ProgramStats = gamma.Stats
	// ProgramMemo caches reaction applications (ReuseTable implements it).
	ProgramMemo = gamma.Memo
)

// ProgramOptions configures Gamma execution: the shared RunConfig knobs plus
// the Gamma-specific ones.
type ProgramOptions struct {
	RunConfig
	// Memo, when set, caches reaction products by reaction and consumed
	// elements.
	Memo ProgramMemo
	// FullScan disables the delta-driven incremental scheduler (measurement
	// baseline / oracle).
	FullScan bool
	// FaultInjector, when set, runs before every reaction application; a
	// non-nil return aborts the run, a panic exercises worker recovery.
	FaultInjector FaultInjector
}

// validate extends the spec check with the Gamma-side engine constraint: the
// matrix engine schedules dataflow ticks, not reactions.
func (o ProgramOptions) validate() error {
	if err := o.Validate(); err != nil {
		return err
	}
	if o.Engine == EngineMatrix {
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("gammaflow: engine %q runs dataflow graphs only", o.Engine))
	}
	return nil
}

func (o ProgramOptions) lower() gamma.Options {
	return gamma.Options{
		Workers:       o.EffectiveWorkers(),
		Seed:          o.Seed,
		MaxSteps:      o.MaxSteps,
		WorkFactor:    o.WorkFactor,
		Tracer:        o.Tracer,
		Memo:          o.Memo,
		FullScan:      o.FullScan,
		FaultInjector: o.FaultInjector,
	}
}

// RunProgramContext executes a Gamma program to its stable state (Eq. 1)
// under ctx. Early exits return partial ProgramStats alongside a classified
// error.
func RunProgramContext(ctx context.Context, p *Program, m *Multiset, opt ProgramOptions) (*ProgramStats, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	ctx, cancel := opt.RunSpec.Context(ctx)
	defer cancel()
	return gamma.RunContext(ctx, p, m, opt.lower())
}

// RunProgram is RunProgramContext with context.Background().
func RunProgram(p *Program, m *Multiset, opt ProgramOptions) (*ProgramStats, error) {
	return RunProgramContext(context.Background(), p, m, opt)
}

// RunPlanContext executes a sequential composition stage by stage under ctx.
func RunPlanContext(ctx context.Context, pl *Plan, m *Multiset, opt ProgramOptions) (*ProgramStats, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	ctx, cancel := opt.RunSpec.Context(ctx)
	defer cancel()
	return pl.RunContext(ctx, m, opt.lower())
}

// RunPlan is RunPlanContext with context.Background().
func RunPlan(pl *Plan, m *Multiset, opt ProgramOptions) (*ProgramStats, error) {
	return RunPlanContext(context.Background(), pl, m, opt)
}

// Termination hints from the static analysis.
const (
	TerminationUnknown    = gamma.TerminationUnknown
	TerminationGuaranteed = gamma.TerminationGuaranteed
	TerminationNever      = gamma.TerminationNever
)

var (
	// AnalyzeTermination applies the syntactic termination criteria
	// (size-decreasing reactions terminate; unconditional self-feeding
	// growth diverges).
	AnalyzeTermination = gamma.AnalyzeTermination
	// DeadReactions lists reactions that can never fire from an initial
	// multiset (label-reachability fixpoint).
	DeadReactions = gamma.DeadReactions
	// NewProgram builds and validates a program.
	NewProgram = gamma.NewProgram
	// SequencePrograms composes programs with the paper's ';' operator.
	SequencePrograms = gamma.Sequence
	// ParseProgram parses Gamma source in the Fig. 3 grammar.
	ParseProgram = gammalang.ParseProgram
	// ParseReaction parses a single reaction.
	ParseReaction = gammalang.ParseReaction
	// ParseGammaFile parses a full source file (init multiset, reactions,
	// composition).
	ParseGammaFile = gammalang.ParseFile
	// FormatProgram renders a program in the paper's listing style.
	FormatProgram = gammalang.Format
	// FormatGammaFile renders a full source file.
	FormatGammaFile = gammalang.FormatFile
)

// Dynamic dataflow model.
type (
	// Graph is a dynamic dataflow program.
	Graph = dataflow.Graph
	// GraphResult reports a dataflow execution.
	GraphResult = dataflow.Result
	// NodeKind enumerates vertex types.
	NodeKind = dataflow.NodeKind
	// TaggedValue is an output token (value plus iteration tag).
	TaggedValue = dataflow.TaggedValue
	// GraphMemo caches pure-vertex firings (ReuseTable implements it).
	GraphMemo = dataflow.Memo
)

// GraphOptions configures dataflow execution: the shared RunConfig knobs
// plus the dataflow-specific ones. RunConfig.MaxSteps bounds vertex firings;
// RunConfig.Seed is ignored (the runtime is tag-deterministic).
type GraphOptions struct {
	RunConfig
	// Memo, when set, caches pure-vertex results by operation and operands.
	Memo GraphMemo
	// FaultInjector, when set, runs before every vertex firing; a non-nil
	// return aborts the run, a panic exercises PE recovery.
	FaultInjector FaultInjector
}

func (o GraphOptions) lower() dataflow.Options {
	opt := dataflow.Options{
		Workers:       o.EffectiveWorkers(),
		MaxFirings:    o.MaxSteps,
		WorkFactor:    o.WorkFactor,
		Tracer:        o.Tracer,
		Memo:          o.Memo,
		FaultInjector: o.FaultInjector,
	}
	if o.Engine == EngineMatrix {
		opt.Engine = dataflow.EngineMatrix
	}
	return opt
}

// RunGraphContext executes a graph until no token is in flight, under ctx.
// Early exits return a partial GraphResult alongside a classified error.
func RunGraphContext(ctx context.Context, g *Graph, opt GraphOptions) (*GraphResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := opt.RunSpec.Context(ctx)
	defer cancel()
	return dataflow.RunContext(ctx, g, opt.lower())
}

// RunGraph is RunGraphContext with context.Background().
func RunGraph(g *Graph, opt GraphOptions) (*GraphResult, error) {
	return RunGraphContext(context.Background(), g, opt)
}

var (
	// NewGraph returns an empty graph to build with its Add/Connect methods.
	NewGraph = dataflow.NewGraph
	// MarshalGraph and UnmarshalGraph read/write the dfir text format.
	MarshalGraph   = dfir.Marshal
	UnmarshalGraph = dfir.Unmarshal
	// GraphToDOT renders a graph with the paper's figure conventions.
	GraphToDOT = dfir.ToDOT
)

// The paper's primary contribution: the conversions.
var (
	// ToGamma is Algorithm 1: dataflow graph → Gamma program + initial
	// multiset.
	ToGamma = core.ToGamma
	// ReactionToGraph is Algorithm 2 step 1: one reaction → dataflow
	// subgraph.
	ReactionToGraph = core.ReactionToGraph
	// ProgramToGraph reconstructs a whole graph from a Gamma program using
	// the reaction classifier (the paper's future work).
	ProgramToGraph = core.ProgramToGraph
	// ClassifyReaction maps a reaction to the dataflow vertex it behaves as.
	ClassifyReaction = core.ClassifyReaction
	// Reduce fuses reaction chains (§III-A3 reductions, Rd1).
	Reduce = core.Reduce
	// OutputsFromMultiset extracts program outputs from a stable multiset.
	OutputsFromMultiset = core.OutputsFromMultiset
)

// MapResult reports one MapMultiset execution.
type MapResult = core.MapResult

// MapMultiset is Algorithm 2 step 2: the Fig. 4 multiset-to-instances
// mapping. The graph instances run under opt.
func MapMultiset(r *Reaction, m *Multiset, opt GraphOptions) (*MapResult, error) {
	return core.MapMultiset(r, m, opt.lower())
}

// Compilation from the paper's von Neumann mini language.
var (
	// CompileSource translates imperative source into a dataflow graph.
	CompileSource = compiler.Compile
)

// Equivalence checking.
type (
	// EquivOptions configures an equivalence check.
	EquivOptions = equiv.Options
	// EquivReport is the outcome of an equivalence check.
	EquivReport = equiv.Report
)

var (
	// CheckEquivalence runs a graph natively and through Algorithm 1 and
	// compares outputs, stuck operands and firing counts.
	CheckEquivalence = equiv.Check
	// CheckEquivalenceContext is CheckEquivalence under a context: the
	// deadline/cancellation propagates into both executions.
	CheckEquivalenceContext = equiv.CheckContext
	// RandomGraph generates seeded random graphs for property testing.
	RandomGraph = equiv.RandomGraph
)

// Trace reuse (DF-DTM-style memoization, usable by both runtimes).
type (
	// ReuseTable memoizes vertex firings and reaction applications.
	ReuseTable = reuse.Table
	// ReuseStats reports a table's hit/miss counters.
	ReuseStats = reuse.Stats
)

// NewReuseTable returns a memoization table (capacity 0 = unbounded).
var NewReuseTable = reuse.NewTable

// Expression language shared by reactions and the compiler.
type Expr = expr.Expr

// ParseExpr parses an arithmetic/boolean expression.
var ParseExpr = expr.Parse

// Structured-Gamma-style static typing (the paper's §II-B: "type checking at
// compile time").
type (
	// Schema declares element arities and field types per label.
	Schema = schema.Schema
	// ElementType is one label's declared shape.
	ElementType = schema.ElementType
	// Type is a static scalar type (IntType, BoolType, ... or AnyType).
	Type = expr.Type
)

var (
	// NewSchema returns an empty schema (strict = undeclared labels error).
	NewSchema = schema.New
	// InferSchema derives a schema from a program and initial multiset.
	InferSchema = schema.Infer
	// The static scalar types.
	IntType    = expr.IntType
	FloatType  = expr.FloatType
	BoolType   = expr.BoolType
	StringType = expr.StringType
	AnyType    = expr.AnyType
)

// Execution profiling: work/span/parallelism analysis over either runtime
// (the §I benefit of studying Gamma programs with dataflow analyses [2]).
type (
	// ProfileCollector implements both runtimes' Tracer interfaces.
	ProfileCollector = profile.Collector
	// ProfileReport holds work, span, parallelism and the depth profile.
	ProfileReport = profile.Report
)

// NewProfileCollector returns an empty trace collector; pass it as
// GraphOptions.Tracer or ProgramOptions.Tracer.
var NewProfileCollector = profile.NewCollector

// Distributed multiset execution (the paper's §IV future work: Gamma over
// distributed multisets for IoT-style deployments).
type (
	// Cluster is a simulated distributed Gamma machine.
	Cluster = dist.Cluster
	// ClusterOptions configures node count, diffusion and seeds.
	ClusterOptions = dist.Options
	// ClusterStats reports rounds, migrations and per-node firings.
	ClusterStats = dist.Stats
)

// NewCluster builds a distributed Gamma machine for a program.
var NewCluster = dist.NewCluster
