// Package gammaflow is the public API of the reproduction of "Exploring the
// Equivalence between Dynamic Dataflow Model and Gamma — General Abstract
// Model for Multiset mAnipulation" (Mello Jr et al., IPPS 2019,
// arXiv:1811.00607).
//
// It re-exports the stable surface of the internal packages:
//
//   - the Gamma runtime (multiset rewriting with sequential and parallel
//     execution) and the Gamma source language of the paper's Fig. 3 grammar;
//   - the dynamic dataflow runtime (tagged tokens, steer/inctag vertices,
//     sequential and parallel PE schedulers);
//   - Algorithm 1 (dataflow → Gamma) and Algorithm 2 (Gamma → dataflow),
//     the reaction classifier, the multiset mapper of Fig. 4, and the
//     §III-A3 reduction engine;
//   - the mini imperative compiler that derives graphs from the paper's
//     von Neumann sources, and the equivalence checking harness.
//
// Quick start — run the paper's Example 1 in both models:
//
//	g, _ := gammaflow.CompileSource("ex1", `
//	    int x = 1; int y = 5; int k = 3; int j = 2; int m;
//	    m = (x + y) - (k * j);`)
//	res, _ := gammaflow.RunGraph(g, gammaflow.GraphOptions{})
//	prog, init, _ := gammaflow.ToGamma(g)
//	gammaflow.RunProgram(prog, init, gammaflow.ProgramOptions{})
//	// res.Output("m") and init now both hold m = 0.
package gammaflow

import (
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dfir"
	"repro/internal/dist"
	"repro/internal/equiv"
	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/profile"
	"repro/internal/reuse"
	"repro/internal/schema"
	"repro/internal/value"
)

// Scalar values and tuples.
type (
	// Value is the scalar operand domain shared by both models.
	Value = value.Value
	// Tuple is one multiset element.
	Tuple = multiset.Tuple
	// Multiset is the Gamma model's single database.
	Multiset = multiset.Multiset
)

// Value constructors.
var (
	Int        = value.Int
	Float      = value.Float
	Bool       = value.Bool
	Str        = value.Str
	ParseValue = value.Parse
)

// Tuple constructors following the paper's element shapes.
var (
	NewMultiset   = multiset.New
	ParseMultiset = multiset.Parse
	Elem          = multiset.Elem
	IntElem       = multiset.IntElem
	PairElem      = multiset.Pair
	ScalarElem    = multiset.New1
)

// Gamma model.
type (
	// Reaction is one (condition, action) pair of the Γ operator.
	Reaction = gamma.Reaction
	// Program is a set of reactions composed in parallel.
	Program = gamma.Program
	// Plan is a sequential composition of parallel reaction groups.
	Plan = gamma.Plan
	// ProgramOptions configures Gamma execution.
	ProgramOptions = gamma.Options
	// ProgramStats reports a Gamma execution.
	ProgramStats = gamma.Stats
)

// Termination hints from the static analysis.
const (
	TerminationUnknown    = gamma.TerminationUnknown
	TerminationGuaranteed = gamma.TerminationGuaranteed
	TerminationNever      = gamma.TerminationNever
)

var (
	// RunProgram executes a Gamma program to its stable state (Eq. 1).
	RunProgram = gamma.Run
	// AnalyzeTermination applies the syntactic termination criteria
	// (size-decreasing reactions terminate; unconditional self-feeding
	// growth diverges).
	AnalyzeTermination = gamma.AnalyzeTermination
	// DeadReactions lists reactions that can never fire from an initial
	// multiset (label-reachability fixpoint).
	DeadReactions = gamma.DeadReactions
	// NewProgram builds and validates a program.
	NewProgram = gamma.NewProgram
	// SequencePrograms composes programs with the paper's ';' operator.
	SequencePrograms = gamma.Sequence
	// ParseProgram parses Gamma source in the Fig. 3 grammar.
	ParseProgram = gammalang.ParseProgram
	// ParseReaction parses a single reaction.
	ParseReaction = gammalang.ParseReaction
	// ParseGammaFile parses a full source file (init multiset, reactions,
	// composition).
	ParseGammaFile = gammalang.ParseFile
	// FormatProgram renders a program in the paper's listing style.
	FormatProgram = gammalang.Format
	// FormatGammaFile renders a full source file.
	FormatGammaFile = gammalang.FormatFile
)

// Dynamic dataflow model.
type (
	// Graph is a dynamic dataflow program.
	Graph = dataflow.Graph
	// GraphOptions configures dataflow execution.
	GraphOptions = dataflow.Options
	// GraphResult reports a dataflow execution.
	GraphResult = dataflow.Result
	// NodeKind enumerates vertex types.
	NodeKind = dataflow.NodeKind
	// TaggedValue is an output token (value plus iteration tag).
	TaggedValue = dataflow.TaggedValue
)

var (
	// NewGraph returns an empty graph to build with its Add/Connect methods.
	NewGraph = dataflow.NewGraph
	// RunGraph executes a graph until no token is in flight.
	RunGraph = dataflow.Run
	// MarshalGraph and UnmarshalGraph read/write the dfir text format.
	MarshalGraph   = dfir.Marshal
	UnmarshalGraph = dfir.Unmarshal
	// GraphToDOT renders a graph with the paper's figure conventions.
	GraphToDOT = dfir.ToDOT
)

// The paper's primary contribution: the conversions.
var (
	// ToGamma is Algorithm 1: dataflow graph → Gamma program + initial
	// multiset.
	ToGamma = core.ToGamma
	// ReactionToGraph is Algorithm 2 step 1: one reaction → dataflow
	// subgraph.
	ReactionToGraph = core.ReactionToGraph
	// MapMultiset is Algorithm 2 step 2: the Fig. 4 multiset-to-instances
	// mapping.
	MapMultiset = core.MapMultiset
	// ProgramToGraph reconstructs a whole graph from a Gamma program using
	// the reaction classifier (the paper's future work).
	ProgramToGraph = core.ProgramToGraph
	// ClassifyReaction maps a reaction to the dataflow vertex it behaves as.
	ClassifyReaction = core.ClassifyReaction
	// Reduce fuses reaction chains (§III-A3 reductions, Rd1).
	Reduce = core.Reduce
	// OutputsFromMultiset extracts program outputs from a stable multiset.
	OutputsFromMultiset = core.OutputsFromMultiset
)

// Compilation from the paper's von Neumann mini language.
var (
	// CompileSource translates imperative source into a dataflow graph.
	CompileSource = compiler.Compile
)

// Equivalence checking.
type (
	// EquivOptions configures an equivalence check.
	EquivOptions = equiv.Options
	// EquivReport is the outcome of an equivalence check.
	EquivReport = equiv.Report
)

var (
	// CheckEquivalence runs a graph natively and through Algorithm 1 and
	// compares outputs, stuck operands and firing counts.
	CheckEquivalence = equiv.Check
	// RandomGraph generates seeded random graphs for property testing.
	RandomGraph = equiv.RandomGraph
)

// Trace reuse (DF-DTM-style memoization, usable by both runtimes).
type (
	// ReuseTable memoizes vertex firings and reaction applications.
	ReuseTable = reuse.Table
	// ReuseStats reports a table's hit/miss counters.
	ReuseStats = reuse.Stats
)

// NewReuseTable returns a memoization table (capacity 0 = unbounded).
var NewReuseTable = reuse.NewTable

// Expression language shared by reactions and the compiler.
type Expr = expr.Expr

// ParseExpr parses an arithmetic/boolean expression.
var ParseExpr = expr.Parse

// Structured-Gamma-style static typing (the paper's §II-B: "type checking at
// compile time").
type (
	// Schema declares element arities and field types per label.
	Schema = schema.Schema
	// ElementType is one label's declared shape.
	ElementType = schema.ElementType
	// Type is a static scalar type (IntType, BoolType, ... or AnyType).
	Type = expr.Type
)

var (
	// NewSchema returns an empty schema (strict = undeclared labels error).
	NewSchema = schema.New
	// InferSchema derives a schema from a program and initial multiset.
	InferSchema = schema.Infer
	// The static scalar types.
	IntType    = expr.IntType
	FloatType  = expr.FloatType
	BoolType   = expr.BoolType
	StringType = expr.StringType
	AnyType    = expr.AnyType
)

// Execution profiling: work/span/parallelism analysis over either runtime
// (the §I benefit of studying Gamma programs with dataflow analyses [2]).
type (
	// ProfileCollector implements both runtimes' Tracer interfaces.
	ProfileCollector = profile.Collector
	// ProfileReport holds work, span, parallelism and the depth profile.
	ProfileReport = profile.Report
)

// NewProfileCollector returns an empty trace collector; pass it as
// GraphOptions.Tracer or ProgramOptions.Tracer.
var NewProfileCollector = profile.NewCollector

// Distributed multiset execution (the paper's §IV future work: Gamma over
// distributed multisets for IoT-style deployments).
type (
	// Cluster is a simulated distributed Gamma machine.
	Cluster = dist.Cluster
	// ClusterOptions configures node count, diffusion and seeds.
	ClusterOptions = dist.Options
	// ClusterStats reports rounds, migrations and per-node firings.
	ClusterStats = dist.Stats
)

// NewCluster builds a distributed Gamma machine for a program.
var NewCluster = dist.NewCluster
